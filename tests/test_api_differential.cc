// Differential pins for the api_redesign: the mcc_run preset path must
// reproduce the PRE-REDESIGN bench computations bit for bit. Each test
// reconstructs the legacy bench loop inline (the code the old bench main
// ran, at its smoke operating point) and compares the formatted table
// cells against what Experiment produces from the corresponding preset in
// configs/. Timing columns (E12 part A) are excluded by construction —
// every pinned cell here is a deterministic count or a formatted mean of
// deterministic values.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "api/experiment.h"
#include "baselines/fault_block.h"
#include "baselines/simple_routers.h"
#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/labeling.h"
#include "core/mcc_region.h"
#include "core/model.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "mesh/octant.h"
#include "runtime/dynamic_model.h"
#include "runtime/timeline.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/dynamic_routing.h"
#include "sim/wormhole/routing.h"
#include "util/parallel.h"
#include "util/scenario.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcc {
namespace {

api::RunReport run_preset(const std::string& file) {
  api::Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/" + file);
  cfg.set("smoke", "1");
  return api::Experiment(std::move(cfg)).run();
}

// ---------------------------------------------------------------------------
// E8: the legacy bench loop (smoke shape: one trial), verbatim.

TEST(ApiDifferential, E8PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e8_routing_quality.cfg");
  ASSERT_EQ(report.tables().size(), 2u);
  const util::Table& got = report.tables()[0].table;
  const util::Table& got_div = report.tables()[1].table;

  const int kTrials = 1;  // MCC_SMOKE shape of the legacy bench
  constexpr int kPairs = 25;
  const int k = 24;
  const mesh::Mesh2D m(k, k);

  util::Table want({"fault rate", "router", "delivered", "minimal",
                    "multi-choice hops", "mean candidates/hop"});
  for (const double rate : {0.05, 0.10, 0.15}) {
    for (const core::RouterKind kind :
         {core::RouterKind::Oracle, core::RouterKind::Records,
          core::RouterKind::LabelsOnly}) {
      util::RunningStats delivered, minimal, multi, cand;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE8000 + static_cast<uint64_t>(rate * 1000) * 7 +
                      trial);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::MccModel2D model(m, f);
        const auto& oct = model.octant(mesh::Octant2{false, false});
        long n = 0, del = 0, min_ok = 0;
        util::RunningStats mstat, cstat;
        for (int i = 0; i < kPairs; ++i) {
          const auto pr = util::sample_pair2d(m, oct.labels, rng);
          if (!pr) continue;
          const auto [s, d] = *pr;
          if (!model.feasible(s, d).feasible) continue;
          ++n;
          const auto r = model.route(s, d, kind, core::RoutePolicy::Random,
                                     trial * 1000 + i);
          del += r.delivered;
          if (r.delivered) {
            min_ok += r.hops() == manhattan(s, d);
            if (r.hops() > 0) {
              mstat.add(double(r.stats.multi_choice_hops) / r.hops());
              cstat.add(double(r.stats.candidate_sum) / r.hops());
            }
          }
        }
        if (n == 0) return;
        std::lock_guard<std::mutex> lock(mu);
        delivered.add(double(del) / n);
        minimal.add(del ? double(min_ok) / del : 0.0);
        if (mstat.count()) multi.add(mstat.mean());
        if (cstat.count()) cand.add(cstat.mean());
      });
      want.add_row({util::Table::pct(rate, 0), core::to_string(kind),
                    util::Table::pct(delivered.mean(), 1),
                    util::Table::pct(minimal.mean(), 1),
                    util::Table::pct(multi.mean(), 1),
                    util::Table::fmt(cand.mean(), 2)});
    }
  }
  EXPECT_EQ(got.headers(), want.headers());
  EXPECT_EQ(got.rows(), want.rows());

  // Path diversity table.
  util::Table want_div(
      {"fault rate", "distinct paths (20 tries)", "path length"});
  for (const double rate : {0.0, 0.10}) {
    util::RunningStats distinct, len;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE8700 + static_cast<uint64_t>(rate * 1000) + trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::MccModel2D model(m, f);
      const auto& oct = model.octant(mesh::Octant2{false, false});
      const auto pr = util::sample_pair2d(m, oct.labels, rng, 12);
      if (!pr || !model.feasible(pr->first, pr->second).feasible) return;
      std::set<std::vector<int>> paths;
      int hops = 0;
      for (int i = 0; i < 20; ++i) {
        const auto r = model.route(pr->first, pr->second,
                                   core::RouterKind::Records,
                                   core::RoutePolicy::Random, trial * 77 + i);
        if (!r.delivered) continue;
        hops = r.hops();
        std::vector<int> key;
        for (const auto c : r.path) key.push_back(c.y * k + c.x);
        paths.insert(key);
      }
      std::lock_guard<std::mutex> lock(mu);
      if (!paths.empty()) {
        distinct.add(static_cast<double>(paths.size()));
        len.add(hops);
      }
    });
    want_div.add_row(
        {util::Table::pct(rate, 0),
         util::Table::mean_ci(distinct.mean(), distinct.ci95(), 1),
         util::Table::fmt(len.mean(), 1)});
  }
  EXPECT_EQ(got_div.rows(), want_div.rows());
}

// ---------------------------------------------------------------------------
// E11: the legacy bench loop (smoke shape), verbatim.

TEST(ApiDifferential, E11PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e11_wormhole.cfg");
  ASSERT_EQ(report.tables().size(), 2u);  // fault-free + clustered

  using sim::wh::Config;
  using sim::wh::GuidanceMode;
  using sim::wh::LoadPoint;
  using sim::wh::Pattern;
  using sim::wh::SimResult;

  const int k = 5;  // smoke shape
  const mesh::Mesh3D m(k, k, k);
  const std::vector<double> rates{0.01};
  const Pattern patterns[] = {Pattern::Uniform, Pattern::Transpose,
                              Pattern::BitComplement, Pattern::Hotspot};

  Config cfg;
  cfg.vcs_per_class = 2;
  cfg.buffer_depth = 4;
  cfg.packet_size = 4;
  LoadPoint base;
  base.warmup = 100;
  base.measure = 300;
  base.drain = 10000;

  int table_index = 0;
  for (const bool faulty : {false, true}) {
    mesh::FaultSet3D f(m);
    if (faulty) {
      util::Rng frng(0xE11);
      f = mesh::inject_clustered(m, 8, 3, frng);
    }
    sim::wh::MccRouting3D routing(m, f, GuidanceMode::Model);

    util::Table want({"pattern", "offered (f/n/c)", "accepted (f/n/c)",
                      "avg lat", "p99 lat", "max lat", "packets", "filtered",
                      "state"});
    for (const Pattern p : patterns) {
      for (const double rate : rates) {
        LoadPoint load = base;
        load.rate = rate;
        const SimResult r = sim::wh::run_load_point3d(
            m, f, routing, p, cfg, core::RoutePolicy::Random, load,
            0xE1100 + static_cast<uint64_t>(rate * 10000));
        want.add_row({to_string(p), util::Table::fmt(r.offered_flits, 4),
                      util::Table::fmt(r.accepted_flits, 4),
                      util::Table::fmt(r.avg_latency, 1),
                      std::to_string(r.p99_latency),
                      std::to_string(r.max_latency),
                      std::to_string(r.delivered_packets),
                      std::to_string(r.filtered),
                      std::string(r.violations   ? "VIOLATION"
                                  : r.deadlocked ? "DEADLOCK"
                                  : !r.drained   ? "backlogged"
                                  : r.saturated  ? "saturated"
                                                 : "stable")});
        ASSERT_EQ(r.violations, 0u);
        ASSERT_FALSE(r.deadlocked);
      }
    }
    const util::Table& got = report.tables()[table_index].table;
    EXPECT_EQ(got.headers(), want.headers());
    EXPECT_EQ(got.rows(), want.rows()) << "fault env " << table_index;
    ++table_index;
  }
}

// ---------------------------------------------------------------------------
// E12 part B: the legacy churn loop (smoke shape) — every column of the B
// table is a deterministic count given the seeds.

TEST(ApiDifferential, E12ChurnPresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e12_churn.cfg");
  ASSERT_EQ(report.tables().size(), 1u);
  const util::Table& got = report.tables()[0].table;

  sim::wh::Config cfg;
  sim::wh::LoadPoint load;
  load.rate = 0.01;
  load.warmup = 100;
  load.measure = 300;
  load.drain = 10000;

  util::Table want({"mesh", "churn/kcyc", "events (f+r)", "delivered",
                    "dropped", "accepted (f/n/c)", "avg lat", "cache hit%",
                    "state"});
  for (const int k : {5}) {
    for (const double churn : {2.0, 10.0}) {
      const mesh::Mesh3D mesh(k, k, k);
      util::Rng rng(0xE1203 + static_cast<uint64_t>(k * 31 + churn));
      const mesh::FaultSet3D initial = mesh::inject_uniform(mesh, 0.02, rng);
      runtime::DynamicModel3D model(mesh, initial);
      sim::wh::DynamicMccRouting3D routing(model);

      util::ChurnParams p;
      p.rate = churn / 1000.0;
      p.horizon =
          static_cast<uint64_t>(load.warmup + load.measure + load.drain / 4);
      p.repair_min = 100;
      p.repair_max = 1000;
      auto timeline = runtime::FaultTimeline3D::sample(mesh, initial, rng, p);

      const auto r = sim::wh::run_churn_load_point3d(
          model, routing, sim::wh::Pattern::Uniform, cfg,
          core::RoutePolicy::Random, load, std::move(timeline),
          0xE12B0 + static_cast<uint64_t>(k));
      want.add_row({std::to_string(k) + "^3", util::Table::fmt(churn, 1),
                    std::to_string(r.fault_events) + "+" +
                        std::to_string(r.repair_events),
                    std::to_string(r.sim.delivered_packets),
                    std::to_string(r.dropped_packets),
                    util::Table::fmt(r.sim.accepted_flits, 4),
                    util::Table::fmt(r.sim.avg_latency, 1),
                    util::Table::pct(r.cache.hit_rate()),
                    std::string(r.sim.violations   ? "VIOLATION"
                                : r.sim.deadlocked ? "DEADLOCK"
                                : !r.sim.drained   ? "backlogged"
                                                   : "ok")});
    }
  }
  EXPECT_EQ(got.headers(), want.headers());
  EXPECT_EQ(got.rows(), want.rows());
}

// ---------------------------------------------------------------------------
// The acceptance combination — dynamic fault model, fault-block baseline,
// hotspot traffic, 2-D — has no bespoke main() anywhere; it must run end
// to end, be deterministic, and emit schema-valid JSON.

api::RunReport run_acceptance_combo() {
  api::Configuration cfg;
  cfg.load_text(
      "driver = wormhole_churn\nname = combo\ndims = 2\nk = 8\n"
      "fault_model = dynamic\npolicy = fault_block\ntraffic = hotspot\n"
      "fault_rate = 0.05\nrates = 0.02\nchurn = 5\nwarmup = 100\n"
      "measure = 300\ndrain = 10000\nrepair_min = 100\nrepair_max = 600\n"
      "seed = 77\n",
      "combo");
  return api::Experiment(std::move(cfg)).run();
}

TEST(ApiDifferential, DynamicFaultBlockHotspot2DRunsEndToEnd) {
  const api::RunReport report = run_acceptance_combo();
  EXPECT_FALSE(report.failed()) << report.failure();
  ASSERT_EQ(report.tables().size(), 1u);
  const auto& rows = report.tables()[0].table.rows();
  ASSERT_EQ(rows.size(), 1u);
  // Packets were actually delivered through the block-field router.
  EXPECT_GT(std::stoull(rows[0][3]), 0u);

  const api::Json doc = report.to_json();
  EXPECT_TRUE(api::validate_report_json(doc).empty());

  // Deterministic: a second run serializes byte-identically.
  const api::RunReport again = run_acceptance_combo();
  EXPECT_EQ(doc.dump(), again.to_json().dump());
}

// The 2-D churn driver must also serve the MCC policies (the ROADMAP's
// "extend the wormhole churn driver to 2-D networks" item).
TEST(ApiDifferential, WormholeChurn2DModelPolicyRuns) {
  api::Configuration cfg;
  cfg.load_text(
      "driver = wormhole_churn\nname = churn2d\ndims = 2\nk = 8\n"
      "fault_model = dynamic\npolicy = model\ntraffic = uniform\n"
      "fault_rate = 0.04\nrates = 0.02\nchurn = 6\nwarmup = 100\n"
      "measure = 400\ndrain = 10000\nseed = 5\n",
      "churn2d");
  const api::RunReport report = api::Experiment(std::move(cfg)).run();
  EXPECT_FALSE(report.failed()) << report.failure();
  const auto& rows = report.tables().at(0).table.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(std::stoull(rows[0][3]), 0u);  // delivered
  EXPECT_EQ(rows[0][8], "ok");
  // The dynamic 2-D path serves per-hop guidance from the epoch cache.
  EXPECT_NE(rows[0][7], "0.0%");
}

// ---------------------------------------------------------------------------
// E1/E2: the legacy region-fill bench loops (smoke shape: one trial),
// verbatim. This PR rewired bench_e1..e6/e9 onto drivers; these pins hold
// the preset path to the pre-redesign computations bit for bit.

TEST(ApiDifferential, E1PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e1_fill2d.cfg");
  ASSERT_EQ(report.tables().size(), 1u);

  const int kTrials = 1;  // MCC_SMOKE shape of the legacy bench
  util::Table want({"mesh", "fault rate", "faults", "MCC healthy",
                    "safety-block healthy", "bbox healthy",
                    "MCC/safety ratio"});
  for (const int k : {16, 32, 48}) {
    const mesh::Mesh2D m(k, k);
    for (const double rate : {0.01, 0.02, 0.05, 0.10, 0.15, 0.20}) {
      util::RunningStats faults, mcc_fill, safety_fill_stat, bbox_fill;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t t) {
        util::Rng rng(0xE1000 + static_cast<uint64_t>(k) * 1000 +
                      static_cast<uint64_t>(rate * 1000) * 7919 + t);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::LabelField2D labels(m, f);
        const auto safety = baselines::safety_fill(m, f);
        const auto bbox = baselines::bounding_box_fill(m, f);
        std::lock_guard<std::mutex> lock(mu);
        faults.add(f.count());
        mcc_fill.add(labels.healthy_unsafe_count());
        safety_fill_stat.add(safety.healthy_unsafe_count());
        bbox_fill.add(bbox.healthy_unsafe_count());
      });
      const double ratio = safety_fill_stat.mean() > 0
                               ? mcc_fill.mean() / safety_fill_stat.mean()
                               : 1.0;
      want.add_row(
          {std::to_string(k) + "x" + std::to_string(k),
           util::Table::pct(rate, 0), util::Table::fmt(faults.mean(), 1),
           util::Table::mean_ci(mcc_fill.mean(), mcc_fill.ci95(), 2),
           util::Table::mean_ci(safety_fill_stat.mean(),
                                safety_fill_stat.ci95(), 2),
           util::Table::mean_ci(bbox_fill.mean(), bbox_fill.ci95(), 2),
           util::Table::fmt(ratio, 3)});
    }
  }
  EXPECT_EQ(report.tables()[0].table.headers(), want.headers());
  EXPECT_EQ(report.tables()[0].table.rows(), want.rows());
}

TEST(ApiDifferential, E2PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e2_fill3d.cfg");
  ASSERT_EQ(report.tables().size(), 1u);

  const int kTrials = 1;
  util::Table want({"mesh", "fault rate", "faults", "MCC healthy",
                    "safety-block healthy", "bbox healthy",
                    "MCC/safety ratio"});
  for (const int k : {8, 12, 16}) {
    const mesh::Mesh3D m(k, k, k);
    for (const double rate : {0.01, 0.02, 0.05, 0.10, 0.15}) {
      util::RunningStats faults, mcc_fill, safety, bbox;
      std::mutex mu;
      util::parallel_for(kTrials, [&](size_t t) {
        util::Rng rng(0xE2000 + static_cast<uint64_t>(k) * 1000 +
                      static_cast<uint64_t>(rate * 1000) * 7919 + t);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::LabelField3D labels(m, f);
        const auto sf = baselines::safety_fill(m, f);
        const auto bb = baselines::bounding_box_fill(m, f);
        std::lock_guard<std::mutex> lock(mu);
        faults.add(f.count());
        mcc_fill.add(labels.healthy_unsafe_count());
        safety.add(sf.healthy_unsafe_count());
        bbox.add(bb.healthy_unsafe_count());
      });
      const double ratio =
          safety.mean() > 0 ? mcc_fill.mean() / safety.mean() : 1.0;
      want.add_row(
          {std::to_string(k) + "^3", util::Table::pct(rate, 0),
           util::Table::fmt(faults.mean(), 1),
           util::Table::mean_ci(mcc_fill.mean(), mcc_fill.ci95(), 2),
           util::Table::mean_ci(safety.mean(), safety.ci95(), 2),
           util::Table::mean_ci(bbox.mean(), bbox.ci95(), 2),
           util::Table::fmt(ratio, 3)});
    }
  }
  EXPECT_EQ(report.tables()[0].table.rows(), want.rows());
}

// ---------------------------------------------------------------------------
// E3/E4: the legacy success-rate bench loops (smoke shape), verbatim.

template <class Mesh, class Labels, class Detect, class Sample>
util::Table legacy_success_table(const Mesh& m, uint64_t seed_base,
                                 const std::vector<double>& rates, int pairs,
                                 Detect&& detect, Sample&& sample) {
  const int kTrials = 1;
  util::Table want({"fault rate", "oracle", "MCC model", "safety blocks",
                    "bbox blocks", "greedy local", "dim-order"});
  for (const double rate : rates) {
    util::RunningStats oracle_s, mcc_s, safety_s, bbox_s, greedy_s, dor_s;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t t) {
      util::Rng rng(seed_base + static_cast<uint64_t>(rate * 1000) * 131 + t);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const Labels labels(m, f);
      const auto safety = baselines::safety_fill(m, f);
      const auto bbox = baselines::bounding_box_fill(m, f);
      int n = 0, n_oracle = 0, n_mcc = 0, n_safety = 0, n_bbox = 0,
          n_greedy = 0, n_dor = 0;
      for (int p = 0; p < pairs; ++p) {
        const auto pair = sample(m, labels, rng);
        if (!pair) continue;
        const auto [s, d] = *pair;
        ++n;
        n_oracle += detect(m, labels, s, d, true);
        n_mcc += detect(m, labels, s, d, false);
        n_safety += baselines::block_feasible(m, safety, s, d);
        n_bbox += baselines::block_feasible(m, bbox, s, d);
        util::Rng grng(rng.fork());
        n_greedy += baselines::greedy_route(m, f, s, d, grng);
        n_dor += baselines::dimension_order_route(m, f, s, d);
      }
      if (n == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      oracle_s.add(double(n_oracle) / n);
      mcc_s.add(double(n_mcc) / n);
      safety_s.add(double(n_safety) / n);
      bbox_s.add(double(n_bbox) / n);
      greedy_s.add(double(n_greedy) / n);
      dor_s.add(double(n_dor) / n);
    });
    want.add_row({util::Table::pct(rate, 0),
                  util::Table::pct(oracle_s.mean(), 1),
                  util::Table::pct(mcc_s.mean(), 1),
                  util::Table::pct(safety_s.mean(), 1),
                  util::Table::pct(bbox_s.mean(), 1),
                  util::Table::pct(greedy_s.mean(), 1),
                  util::Table::pct(dor_s.mean(), 1)});
  }
  return want;
}

TEST(ApiDifferential, E3PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e3_success2d.cfg");
  ASSERT_EQ(report.tables().size(), 1u);
  const mesh::Mesh2D m(32, 32);
  const util::Table want = legacy_success_table<mesh::Mesh2D,
                                                core::LabelField2D>(
      m, 0xE3000, {0.01, 0.02, 0.05, 0.10, 0.15, 0.20}, 50,
      [](const mesh::Mesh2D& mm, const core::LabelField2D& labels,
         mesh::Coord2 s, mesh::Coord2 d, bool oracle) {
        if (oracle) {
          const core::ReachField2D reach(mm, labels, d,
                                         core::NodeFilter::NonFaulty);
          return static_cast<int>(reach.feasible(s));
        }
        return static_cast<int>(core::detect2d(mm, labels, s, d).feasible());
      },
      [](const mesh::Mesh2D& mm, const core::LabelField2D& labels,
         util::Rng& rng) { return util::sample_pair2d(mm, labels, rng); });
  EXPECT_EQ(report.tables()[0].table.rows(), want.rows());
}

TEST(ApiDifferential, E4PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e4_success3d.cfg");
  ASSERT_EQ(report.tables().size(), 1u);
  const mesh::Mesh3D m(12, 12, 12);
  const util::Table want = legacy_success_table<mesh::Mesh3D,
                                                core::LabelField3D>(
      m, 0xE4000, {0.01, 0.02, 0.05, 0.10, 0.15}, 40,
      [](const mesh::Mesh3D& mm, const core::LabelField3D& labels,
         mesh::Coord3 s, mesh::Coord3 d, bool oracle) {
        if (oracle) {
          const core::ReachField3D reach(mm, labels, d,
                                         core::NodeFilter::NonFaulty);
          return static_cast<int>(reach.feasible(s));
        }
        return static_cast<int>(core::detect3d(mm, labels, s, d).feasible());
      },
      [](const mesh::Mesh3D& mm, const core::LabelField3D& labels,
         util::Rng& rng) { return util::sample_pair3d(mm, labels, rng); });
  EXPECT_EQ(report.tables()[0].table.rows(), want.rows());
}

// ---------------------------------------------------------------------------
// E5: the legacy region-geometry bench (smoke shape), verbatim.

TEST(ApiDifferential, E5PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e5_regions.cfg");
  ASSERT_EQ(report.tables().size(), 2u);

  const int kTrials = 1;
  const int k = 32;
  const mesh::Mesh2D m(k, k);
  util::Table want({"fault rate", "regions", "largest region",
                    "healthy/region", "width x height", "multi-fault %"});
  for (const double rate : {0.02, 0.05, 0.10, 0.15, 0.20}) {
    util::RunningStats regions, largest, healthy_per, width, height, multi;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t t) {
      util::Rng rng(0xE5000 + static_cast<uint64_t>(rate * 1000) * 37 + t);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::LabelField2D labels(m, f);
      const core::MccSet2D mccs(m, labels);
      size_t big = 0;
      int multi_fault = 0;
      util::RunningStats h, w, ht;
      for (const auto& r : mccs.regions()) {
        big = std::max(big, r.cells.size());
        h.add(r.healthy_cells);
        w.add(r.width());
        ht.add(r.height());
        multi_fault += r.faulty_cells > 1;
      }
      std::lock_guard<std::mutex> lock(mu);
      regions.add(static_cast<double>(mccs.regions().size()));
      largest.add(static_cast<double>(big));
      if (h.count()) {
        healthy_per.add(h.mean());
        width.add(w.mean());
        height.add(ht.mean());
        multi.add(double(multi_fault) /
                  static_cast<double>(mccs.regions().size()));
      }
    });
    want.add_row({util::Table::pct(rate, 0),
                  util::Table::mean_ci(regions.mean(), regions.ci95(), 1),
                  util::Table::fmt(largest.mean(), 1),
                  util::Table::fmt(healthy_per.mean(), 2),
                  util::Table::fmt(width.mean(), 2) + " x " +
                      util::Table::fmt(height.mean(), 2),
                  util::Table::pct(multi.mean(), 1)});
  }
  EXPECT_EQ(report.tables()[0].table.rows(), want.rows());

  util::Table want2({"fault rate", "octant ++", "octant -+", "octant +-",
                     "octant --", "max/min ratio"});
  for (const double rate : {0.10, 0.20}) {
    util::RunningStats per_oct[4], ratio;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t t) {
      util::Rng rng(0xE5500 + static_cast<uint64_t>(rate * 1000) * 37 + t);
      const auto f = mesh::inject_uniform(m, rate, rng);
      double counts[4];
      for (int o = 0; o < 4; ++o) {
        const mesh::Octant2 oct{(o & 1) != 0, (o & 2) != 0};
        const auto flipped = materialize(f, m, oct);
        const core::LabelField2D labels(m, flipped);
        counts[o] = labels.healthy_unsafe_count();
      }
      std::lock_guard<std::mutex> lock(mu);
      double lo = counts[0], hi = counts[0];
      for (int o = 0; o < 4; ++o) {
        per_oct[o].add(counts[o]);
        lo = std::min(lo, counts[o]);
        hi = std::max(hi, counts[o]);
      }
      if (lo > 0) ratio.add(hi / lo);
    });
    want2.add_row(
        {util::Table::pct(rate, 0), util::Table::fmt(per_oct[0].mean(), 2),
         util::Table::fmt(per_oct[1].mean(), 2),
         util::Table::fmt(per_oct[2].mean(), 2),
         util::Table::fmt(per_oct[3].mean(), 2),
         util::Table::fmt(ratio.count() ? ratio.mean() : 1.0, 2)});
  }
  EXPECT_EQ(report.tables()[1].table.rows(), want2.rows());
}

// ---------------------------------------------------------------------------
// E6: the legacy agreement bench (smoke shape), verbatim.

TEST(ApiDifferential, E6PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e6_agreement.cfg");
  ASSERT_EQ(report.tables().size(), 2u);

  const int kTrials = 1;
  constexpr int kPairs = 60;
  {
    const mesh::Mesh2D m(24, 24);
    util::Table want({"fault rate", "pairs", "oracle feasible",
                      "detect==oracle", "thm1==oracle", "lemma1 sound",
                      "lemma1 complete"});
    for (const double rate : {0.05, 0.10, 0.20, 0.30}) {
      std::mutex mu;
      long pairs = 0, feas = 0, det_ok = 0, thm_ok = 0, l1_sound = 0,
           l1_complete = 0, blocked = 0;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE6000 + static_cast<uint64_t>(rate * 1000) * 13 +
                      trial);
        const auto f = mesh::inject_uniform(m, rate, rng);
        const core::LabelField2D labels(m, f);
        const core::MccSet2D mccs(m, labels);
        const core::Boundary2D boundary(m, labels, mccs);
        long p = 0, fe = 0, d_ok = 0, t_ok = 0, s_ok = 0, c_ok = 0, bl = 0;
        for (int i = 0; i < kPairs; ++i) {
          const auto pr = util::sample_pair2d(m, labels, rng);
          if (!pr) continue;
          const auto [s, d] = *pr;
          ++p;
          const core::ReachField2D oracle(m, labels, d,
                                          core::NodeFilter::NonFaulty);
          const bool truth = oracle.feasible(s);
          fe += truth;
          d_ok += core::detect2d(m, labels, s, d).feasible() == truth;
          t_ok += boundary.theorem1_feasible(s, d) == truth;
          const bool l1 = core::lemma1_blocked(mccs, s, d).blocked;
          if (l1) s_ok += !truth;
          if (!truth) {
            ++bl;
            c_ok += l1;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        pairs += p;
        feas += fe;
        det_ok += d_ok;
        thm_ok += t_ok;
        l1_sound += s_ok;
        l1_complete += c_ok;
        blocked += bl;
      });
      auto frac = [](long a, long b) {
        return b == 0 ? 1.0 : double(a) / double(b);
      };
      want.add_row({util::Table::pct(rate, 0), std::to_string(pairs),
                    util::Table::pct(frac(feas, pairs), 1),
                    util::Table::pct(frac(det_ok, pairs), 2),
                    util::Table::pct(frac(thm_ok, pairs), 2),
                    blocked == 0
                        ? "n/a"
                        : util::Table::pct(frac(l1_sound, l1_sound), 2),
                    blocked == 0
                        ? "n/a"
                        : util::Table::pct(frac(l1_complete, blocked), 2)});
    }
    EXPECT_EQ(report.tables()[0].table.rows(), want.rows());
  }
  {
    const mesh::Mesh3D m(10, 10, 10);
    util::Table want({"workload", "pairs", "oracle feasible",
                      "detect3d==oracle"});
    struct Work {
      const char* name;
      double rate;
      bool clustered;
    };
    for (const Work w : {Work{"uniform 5%", 0.05, false},
                         Work{"uniform 15%", 0.15, false},
                         Work{"uniform 25%", 0.25, false},
                         Work{"clustered 15%", 0.15, true}}) {
      std::mutex mu;
      long pairs = 0, feas = 0, agree = 0;
      util::parallel_for(kTrials, [&](size_t trial) {
        util::Rng rng(0xE6700 + static_cast<uint64_t>(w.rate * 1000) * 13 +
                      (w.clustered ? 7777 : 0) + trial);
        const auto f =
            w.clustered
                ? mesh::inject_clustered(
                      m, static_cast<int>(w.rate * m.node_count()), 4, rng)
                : mesh::inject_uniform(m, w.rate, rng);
        const core::LabelField3D labels(m, f);
        long p = 0, fe = 0, ag = 0;
        for (int i = 0; i < kPairs; ++i) {
          const auto pr = util::sample_pair3d(m, labels, rng);
          if (!pr) continue;
          const auto [s, d] = *pr;
          ++p;
          const core::ReachField3D oracle(m, labels, d,
                                          core::NodeFilter::NonFaulty);
          const bool truth = oracle.feasible(s);
          fe += truth;
          ag += core::detect3d(m, labels, s, d).feasible() == truth;
        }
        std::lock_guard<std::mutex> lock(mu);
        pairs += p;
        feas += fe;
        agree += ag;
      });
      want.add_row({w.name, std::to_string(pairs),
                    util::Table::pct(pairs ? double(feas) / pairs : 0, 1),
                    util::Table::pct(pairs ? double(agree) / pairs : 1, 2)});
    }
    EXPECT_EQ(report.tables()[1].table.rows(), want.rows());
  }
}

// ---------------------------------------------------------------------------
// E9: the legacy ablation bench (smoke shape), verbatim.

TEST(ApiDifferential, E9PresetMatchesLegacyBenchPath) {
  const api::RunReport report = run_preset("e9_ablation.cfg");
  ASSERT_EQ(report.tables().size(), 3u);

  const int kTrials = 1;
  constexpr int kPairs = 30;
  const int k = 24;
  const mesh::Mesh2D m(k, k);

  util::Table want({"fault rate", "records router", "labels-only router",
                    "greedy (fault info only)"});
  for (const double rate : {0.05, 0.10, 0.15, 0.20}) {
    util::RunningStats rec_s, lab_s, greedy_s;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE9000 + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::MccModel2D model(m, f);
      const auto& oct = model.octant(mesh::Octant2{false, false});
      long n = 0, rec = 0, lab = 0, gr = 0;
      for (int i = 0; i < kPairs; ++i) {
        const auto pr = util::sample_pair2d(m, oct.labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        if (!model.feasible(s, d).feasible) continue;
        ++n;
        rec += model
                   .route(s, d, core::RouterKind::Records,
                          core::RoutePolicy::Random, trial * 97 + i)
                   .delivered;
        lab += model
                   .route(s, d, core::RouterKind::LabelsOnly,
                          core::RoutePolicy::Random, trial * 97 + i)
                   .delivered;
        util::Rng grng(trial * 131 + i);
        gr += baselines::greedy_route(m, f, s, d, grng);
      }
      if (n == 0) return;
      std::lock_guard<std::mutex> lock(mu);
      rec_s.add(double(rec) / n);
      lab_s.add(double(lab) / n);
      greedy_s.add(double(gr) / n);
    });
    want.add_row({util::Table::pct(rate, 0),
                  util::Table::pct(rec_s.mean(), 1),
                  util::Table::pct(lab_s.mean(), 1),
                  util::Table::pct(greedy_s.mean(), 1)});
  }
  EXPECT_EQ(report.tables()[0].table.rows(), want.rows());

  util::Table want2({"fault rate", "blocked pairs",
                     "no-fill wrongly feasible"});
  for (const double rate : {0.10, 0.20, 0.30}) {
    std::mutex mu;
    long blocked = 0, wrong = 0;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE9500 + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::LabelField2D labels(m, f);
      long bl = 0, wr = 0;
      for (int i = 0; i < kPairs; ++i) {
        const auto pr = util::sample_pair2d(m, labels, rng);
        if (!pr) continue;
        const auto [s, d] = *pr;
        const core::ReachField2D oracle(m, labels, d,
                                        core::NodeFilter::NonFaulty);
        if (oracle.feasible(s)) continue;
        ++bl;
        const bool line_x_clear = [&, s = s, d = d] {
          for (int x = s.x; x <= d.x; ++x)
            if (labels.state({x, s.y}) == core::NodeState::Faulty)
              return false;
          return true;
        }();
        const bool line_y_clear = [&, s = s, d = d] {
          for (int y = s.y; y <= d.y; ++y)
            if (labels.state({s.x, y}) == core::NodeState::Faulty)
              return false;
          return true;
        }();
        wr += line_x_clear || line_y_clear;
      }
      std::lock_guard<std::mutex> lock(mu);
      blocked += bl;
      wrong += wr;
    });
    want2.add_row({util::Table::pct(rate, 0), std::to_string(blocked),
                   blocked ? util::Table::pct(double(wrong) / blocked, 1)
                           : "n/a"});
  }
  EXPECT_EQ(report.tables()[1].table.rows(), want2.rows());

  util::Table want3({"fault rate", "regions (ortho)", "regions (eight)",
                     "largest (ortho)", "largest (eight)"});
  for (const double rate : {0.05, 0.15, 0.25}) {
    util::RunningStats ro, re, lo, le;
    std::mutex mu;
    util::parallel_for(kTrials, [&](size_t trial) {
      util::Rng rng(0xE9900 + static_cast<uint64_t>(rate * 1000) * 3 +
                    trial);
      const auto f = mesh::inject_uniform(m, rate, rng);
      const core::LabelField2D labels(m, f);
      const core::MccSet2D ortho(m, labels, core::Connectivity::Ortho);
      const core::MccSet2D eight(m, labels, core::Connectivity::Eight);
      size_t biggest_o = 0, biggest_e = 0;
      for (const auto& r : ortho.regions())
        biggest_o = std::max(biggest_o, r.cells.size());
      for (const auto& r : eight.regions())
        biggest_e = std::max(biggest_e, r.cells.size());
      std::lock_guard<std::mutex> lock(mu);
      ro.add(static_cast<double>(ortho.regions().size()));
      re.add(static_cast<double>(eight.regions().size()));
      lo.add(static_cast<double>(biggest_o));
      le.add(static_cast<double>(biggest_e));
    });
    want3.add_row({util::Table::pct(rate, 0), util::Table::fmt(ro.mean(), 1),
                   util::Table::fmt(re.mean(), 1),
                   util::Table::fmt(lo.mean(), 1),
                   util::Table::fmt(le.mean(), 1)});
  }
  EXPECT_EQ(report.tables()[2].table.rows(), want3.rows());
}

}  // namespace
}  // namespace mcc
