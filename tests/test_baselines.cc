// Baselines: fault-block fills and naive routers, plus the dominance
// relations the paper's comparison relies on (MCC absorbs fewer healthy
// nodes; MCC-feasible ⊇ block-feasible).
#include <gtest/gtest.h>

#include "baselines/fault_block.h"
#include "baselines/simple_routers.h"
#include "core/feasibility2d.h"
#include "core/labeling.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::baselines {
namespace {

using mesh::Coord2;
using mesh::Coord3;

TEST(SafetyFill2D, DiagonalPairDisablesCorners) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({3, 3});
  f.set_faulty({4, 4});
  const auto b = safety_fill(m, f);
  // Both diagonal companions have faults in two different dimensions.
  EXPECT_TRUE(b.unsafe({3, 4}));
  EXPECT_TRUE(b.unsafe({4, 3}));
  EXPECT_EQ(b.healthy_unsafe_count(), 2);
}

TEST(SafetyFill2D, IsolatedFaultsDoNotFill) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  f.set_faulty({2, 2});
  f.set_faulty({7, 7});
  const auto b = safety_fill(m, f);
  EXPECT_EQ(b.healthy_unsafe_count(), 0);
}

TEST(SafetyFill2D, RegionsAreOrthogonallyConvexPerLine) {
  // Safety-rule regions have contiguous unsafe spans on every row/column.
  const mesh::Mesh2D m(16, 16);
  util::Rng rng(501);
  const auto f = mesh::inject_uniform(m, 0.15, rng);
  const auto b = safety_fill(m, f);
  // Check per-row contiguity of each connected region via a simple scan:
  // any safe gap between two unsafe cells of the same row must separate
  // different components. We verify the weaker but telling invariant used
  // in the literature: no healthy node has >= 2 blocked dimensions.
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) {
      if (b.unsafe({x, y})) continue;
      int dims = 0;
      if ((x + 1 < 16 && b.unsafe({x + 1, y})) ||
          (x - 1 >= 0 && b.unsafe({x - 1, y})))
        ++dims;
      if ((y + 1 < 16 && b.unsafe({x, y + 1})) ||
          (y - 1 >= 0 && b.unsafe({x, y - 1})))
        ++dims;
      EXPECT_LT(dims, 2) << x << "," << y;
    }
}

TEST(BoundingBoxFill2D, ComponentDilatesToRectangle) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  f.set_faulty({2, 2});
  f.set_faulty({3, 3});  // touching diagonally: one box 2x2
  f.set_faulty({3, 4});
  const auto b = bounding_box_fill(m, f);
  for (int y = 2; y <= 4; ++y)
    for (int x = 2; x <= 3; ++x) EXPECT_TRUE(b.unsafe({x, y}));
  EXPECT_EQ(b.healthy_unsafe_count(), 3);  // 6 cells - 3 faults
  EXPECT_FALSE(b.unsafe({4, 4}));
}

TEST(BoundingBoxFill3D, MergesTouchingBoxes) {
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  f.set_faulty({2, 2, 2});
  f.set_faulty({3, 3, 3});
  const auto b = bounding_box_fill(m, f);
  EXPECT_TRUE(b.unsafe({2, 3, 2}));
  EXPECT_TRUE(b.unsafe({3, 2, 3}));
  EXPECT_EQ(b.healthy_unsafe_count(), 6);  // 2x2x2 box minus 2 faults
}

using util::SweepParam;  // the shared sweep cell (scenario.h); pairs unused

class DominanceSweep2D : public ::testing::TestWithParam<SweepParam> {};

// The paper's core claim: MCC absorbs a subset of the healthy nodes any
// rectangular model absorbs.
TEST_P(DominanceSweep2D, MccUnsafeSubsetOfSafetyBlocks) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const core::LabelField2D l(m, f);
  const auto blocks = safety_fill(m, f);

  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      const Coord2 c{x, y};
      if (l.unsafe(c)) {
        EXPECT_TRUE(blocks.unsafe(c)) << c;
      }
    }
  EXPECT_LE(l.healthy_unsafe_count(), blocks.healthy_unsafe_count());
}

TEST_P(DominanceSweep2D, MccFeasibleWheneverBlocksFeasible) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed + 1);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const core::LabelField2D l(m, f);
  const auto blocks = safety_fill(m, f);
  util::Rng prng(seed * 3);

  for (int t = 0; t < 200; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    if (block_feasible(m, blocks, s, d)) {
      EXPECT_TRUE(core::detect2d(m, l, s, d).feasible())
          << "s=" << s << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, DominanceSweep2D,
    ::testing::Values(SweepParam{12, 0.05, 511}, SweepParam{12, 0.15, 512},
                      SweepParam{16, 0.10, 513}, SweepParam{16, 0.20, 514},
                      SweepParam{24, 0.10, 515}, SweepParam{24, 0.20, 516},
                      SweepParam{32, 0.15, 517}));

class DominanceSweep3D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DominanceSweep3D, MccUnsafeSubsetOfSafetyBlocks) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const core::LabelField3D l(m, f);
  const auto blocks = safety_fill(m, f);
  for (size_t i = 0; i < m.node_count(); ++i) {
    const Coord3 c = m.coord(i);
    if (l.unsafe(c)) {
      EXPECT_TRUE(blocks.unsafe(c)) << c;
    }
  }
  EXPECT_LE(l.healthy_unsafe_count(), blocks.healthy_unsafe_count());
}

INSTANTIATE_TEST_SUITE_P(
    Random, DominanceSweep3D,
    ::testing::Values(SweepParam{6, 0.10, 521}, SweepParam{8, 0.10, 522},
                      SweepParam{8, 0.20, 523}, SweepParam{10, 0.15, 524}));

TEST(BlockFeasible, RespectsBlocksNotJustFaults) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  f.set_faulty({4, 4});
  f.set_faulty({5, 5});
  const auto blocks = safety_fill(m, f);
  // (4,5) and (5,4) are disabled: the diagonal gap closes under the block
  // model even though the oracle can pass through.
  const core::LabelField2D l(m, f);
  const core::ReachField2D oracle(m, l, {9, 9}, core::NodeFilter::NonFaulty);
  EXPECT_TRUE(oracle.feasible({0, 0}));
  EXPECT_TRUE(block_feasible(m, blocks, {0, 0}, {9, 9}));  // around the block
  // Straight through the gap: blocked for the block model.
  EXPECT_FALSE(block_feasible(m, blocks, {4, 5}, {5, 6}));
}

TEST(DimensionOrder, FailsOnBlockedElbow) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({5, 0});  // on the x-leg of the e-cube path
  EXPECT_FALSE(dimension_order_route(m, f, {0, 0}, {7, 7}));
  EXPECT_TRUE(dimension_order_route(m, f, {0, 1}, {7, 7}));
}

TEST(DimensionOrder, HandlesAllDirections) {
  const mesh::Mesh3D m(6, 6, 6);
  const mesh::FaultSet3D f(m);
  EXPECT_TRUE(dimension_order_route(m, f, {5, 5, 5}, {0, 0, 0}));
  EXPECT_TRUE(dimension_order_route(m, f, {0, 5, 3}, {5, 0, 3}));
}

TEST(Greedy, DeliversWhenLucky) {
  const mesh::Mesh2D m(8, 8);
  const mesh::FaultSet2D f(m);
  util::Rng rng(530);
  EXPECT_TRUE(greedy_route(m, f, {0, 0}, {7, 7}, rng));
}

TEST(Greedy, SucceedsLessOftenThanModelRouting) {
  const mesh::Mesh2D m(16, 16);
  util::Rng rng(531);
  int greedy_ok = 0, model_ok = 0, trials = 0;
  for (int t = 0; t < 100; ++t) {
    util::Rng fr(rng.fork());
    const auto f = mesh::inject_uniform(m, 0.15, fr, {{0, 0}, {15, 15}});
    const core::LabelField2D l(m, f);
    if (!l.safe({0, 0}) || !l.safe({15, 15})) continue;
    ++trials;
    if (core::detect2d(m, l, {0, 0}, {15, 15}).feasible()) ++model_ok;
    util::Rng gr(rng.fork());
    if (greedy_route(m, f, {0, 0}, {15, 15}, gr)) ++greedy_ok;
  }
  ASSERT_GT(trials, 30);
  EXPECT_GT(model_ok, greedy_ok);
}

}  // namespace
}  // namespace mcc::baselines
