// Boundary construction: wall geometry, deflection + merge around blocking
// MCCs, record placement, and the exactness of the Theorem-1 chain test.
#include <gtest/gtest.h>

#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Dir2;

struct Built {
  mesh::Mesh2D m;
  mesh::FaultSet2D f;
  LabelField2D l;
  MccSet2D mccs;
  Boundary2D b;

  Built(int size, std::function<void(mesh::FaultSet2D&, const mesh::Mesh2D&)>
                      inject)
      : m(size, size),
        f([&] {
          mesh::FaultSet2D fs(m);
          inject(fs, m);
          return fs;
        }()),
        l(m, f),
        mccs(m, l),
        b(m, l, mccs) {}
};

TEST(Boundary2D, SimpleBlockWalls) {
  // 2x2 block at (4..5, 4..5); corner c = (3,3); Y wall descends x=3,
  // X wall runs west along y=3.
  Built t(10, [](mesh::FaultSet2D& f, const mesh::Mesh2D&) {
    for (int y = 4; y <= 5; ++y)
      for (int x = 4; x <= 5; ++x) f.set_faulty({x, y});
  });
  ASSERT_EQ(t.mccs.regions().size(), 1u);
  const Wall2D& yw = t.b.y_wall(0);
  ASSERT_TRUE(yw.exists);
  EXPECT_TRUE(yw.complete);
  // Descent along x=3: starts beside the region's bottom-left cell, passes
  // the corner (3,3), ends at the mesh edge.
  const std::vector<Coord2> expect_y{{3, 4}, {3, 3}, {3, 2}, {3, 1}, {3, 0}};
  EXPECT_EQ(yw.path, expect_y);
  EXPECT_EQ(yw.chain, std::vector<int>{0});

  const Wall2D& xw = t.b.x_wall(0);
  const std::vector<Coord2> expect_x{{4, 3}, {3, 3}, {2, 3}, {1, 3}, {0, 3}};
  EXPECT_EQ(xw.path, expect_x);

  // Records: the corner carries both walls, plain wall nodes one each.
  EXPECT_EQ(t.b.records_at({3, 3}).size(), 2u);
  EXPECT_EQ(t.b.records_at({3, 1}).size(), 1u);
  const auto& recs = t.b.records_at({1, 3});
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].owner, 0);
  EXPECT_EQ(recs[0].guard, Dir2::PosY);
}

TEST(Boundary2D, CornerSwallowedByDiagonalRegion) {
  // The under-specified case from the routing bug hunt: M = {(6,8)} whose
  // corner (5,7) is itself faulty (a diagonally-touching one-cell region
  // B). The wall must wrap B and its merged chain must guard both QY(B)
  // and QY(M), or a router heading for d=(6,11) walks into the dead column
  // below (6,8).
  Built t(16, [](mesh::FaultSet2D& f, const mesh::Mesh2D&) {
    f.set_faulty({6, 8});
    f.set_faulty({5, 7});
  });
  const int m_id = t.mccs.region_at({6, 8});
  const int b_id = t.mccs.region_at({5, 7});
  ASSERT_NE(m_id, b_id);
  const Wall2D& yw = t.b.y_wall(m_id);
  ASSERT_TRUE(yw.exists);
  EXPECT_EQ(yw.chain, (std::vector<int>{m_id, b_id}));
  // The wall wraps B: down its west flank (column 4) to the mesh edge.
  auto contains = [&](Coord2 c) {
    return std::find(yw.path.begin(), yw.path.end(), c) != yw.path.end();
  };
  EXPECT_TRUE(contains({5, 8}));  // start, beside M's bottom cell
  EXPECT_TRUE(contains({4, 7}));  // rounding B
  EXPECT_TRUE(contains({4, 6}));  // B's corner
  EXPECT_TRUE(contains({4, 0}));  // continues to the mesh edge
}

TEST(Boundary2D, CornerNodeCarriesBothWalls) {
  Built t(10, [](mesh::FaultSet2D& f, const mesh::Mesh2D&) {
    f.set_faulty({5, 5});
  });
  const auto& recs = t.b.records_at({4, 4});
  EXPECT_EQ(recs.size(), 2u);
}

TEST(Boundary2D, WallSkippedWhenRegionTouchesMeshEdge) {
  // Region at the south-west corner: no entry into its forbidden regions
  // is possible, so no walls exist.
  Built t(10, [](mesh::FaultSet2D& f, const mesh::Mesh2D&) {
    f.set_faulty({0, 0});
  });
  EXPECT_FALSE(t.b.y_wall(0).exists);
  EXPECT_FALSE(t.b.x_wall(0).exists);
  EXPECT_EQ(t.b.record_count(), 0u);
}

TEST(Boundary2D, DeflectionMergesChain) {
  // The worked example from the header comment: M at (5..8, 5..8), B at
  // (2..4, 2..3). M's Y wall starts at (4,4), is blocked by B at (4,3),
  // deflects west around B and continues south from B's corner (1,1).
  Built t(12, [](mesh::FaultSet2D& f, const mesh::Mesh2D&) {
    for (int x = 2; x <= 4; ++x)
      for (int y = 2; y <= 3; ++y) f.set_faulty({x, y});
    for (int x = 5; x <= 8; ++x)
      for (int y = 5; y <= 8; ++y) f.set_faulty({x, y});
  });
  ASSERT_EQ(t.mccs.regions().size(), 2u);
  const int b_id = t.mccs.region_at({2, 2});
  const int m_id = t.mccs.region_at({5, 5});
  const Wall2D& yw = t.b.y_wall(m_id);
  ASSERT_TRUE(yw.exists);
  EXPECT_TRUE(yw.complete);
  // Chain merged B.
  ASSERT_EQ(yw.chain.size(), 2u);
  EXPECT_EQ(yw.chain[0], m_id);
  EXPECT_EQ(yw.chain[1], b_id);
  // The wall passes along B's north rim (row 4) and down B's west flank
  // (column 1) to the mesh edge.
  auto contains = [&](Coord2 c) {
    return std::find(yw.path.begin(), yw.path.end(), c) != yw.path.end();
  };
  EXPECT_TRUE(contains({4, 4}));  // M's corner
  EXPECT_TRUE(contains({2, 4}));  // north rim of B
  EXPECT_TRUE(contains({1, 3}));  // west flank of B
  EXPECT_TRUE(contains({1, 1}));  // B's corner
  EXPECT_TRUE(contains({1, 0}));  // continues to the mesh edge
}

TEST(Boundary2D, Theorem1CatchesMultiRegionTrap) {
  Built t(12, [](mesh::FaultSet2D& f, const mesh::Mesh2D&) {
    for (int x = 2; x <= 4; ++x)
      for (int y = 2; y <= 3; ++y) f.set_faulty({x, y});
    for (int x = 5; x <= 8; ++x)
      for (int y = 5; y <= 8; ++y) f.set_faulty({x, y});
  });
  const Coord2 s{3, 1}, d{6, 10};
  // Lemma 1 alone misses this trap; the chain test must catch it.
  EXPECT_FALSE(lemma1_blocked(t.mccs, s, d).blocked);
  EXPECT_FALSE(t.b.theorem1_feasible(s, d));
  // And a source west of everything is fine.
  EXPECT_TRUE(t.b.theorem1_feasible({0, 0}, d));
}

using util::SweepParam;

class BoundarySweep : public ::testing::TestWithParam<SweepParam> {};

// Theorem 1 (chain form) must agree exactly with the oracle.
TEST_P(BoundarySweep, Theorem1MatchesOracle) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  const Boundary2D b(m, l, mccs);
  util::Rng prng(seed * 3 + 7);

  for (int t = 0; t < pairs * 10; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    const ReachField2D oracle(m, l, d, NodeFilter::NonFaulty);
    EXPECT_EQ(b.theorem1_feasible(s, d), oracle.feasible(s))
        << "s=" << s << " d=" << d << " seed=" << seed;
  }
}

// All walls complete, all records chained to valid regions.
TEST_P(BoundarySweep, WallsWellFormed) {
  const auto [size, rate, seed, pairs] = GetParam();
  (void)pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed + 500);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  const Boundary2D b(m, l, mccs);

  size_t recs = 0;
  for (size_t id = 0; id < mccs.regions().size(); ++id) {
    for (const Wall2D* w : {&b.y_wall(id), &b.x_wall(id)}) {
      EXPECT_TRUE(w->complete);
      EXPECT_EQ(w->chain.empty(), false);
      EXPECT_EQ(w->chain[0], static_cast<int>(id));
      for (const Coord2 c : w->path) {
        EXPECT_TRUE(m.contains(c));
        EXPECT_TRUE(l.safe(c)) << c;  // walls live on safe nodes
      }
      if (w->exists) recs += w->path.size();
    }
  }
  EXPECT_EQ(recs, b.record_count());
}

INSTANTIATE_TEST_SUITE_P(
    Random, BoundarySweep,
    ::testing::Values(SweepParam{10, 0.10, 201, 50},
                      SweepParam{12, 0.15, 202, 50},
                      SweepParam{16, 0.10, 203, 40},
                      SweepParam{16, 0.20, 204, 40},
                      SweepParam{20, 0.15, 205, 30},
                      SweepParam{24, 0.10, 206, 30},
                      SweepParam{24, 0.25, 207, 30},
                      SweepParam{32, 0.15, 208, 20}));

TEST(Boundary2D, RecordCountGrowsWithRegions) {
  const mesh::Mesh2D m(20, 20);
  util::Rng rng(210);
  const auto sparse = mesh::inject_uniform(m, 0.03, rng);
  const auto dense = mesh::inject_uniform(m, 0.15, rng);
  const LabelField2D ls(m, sparse), ld(m, dense);
  const MccSet2D ms(m, ls), md(m, ld);
  const Boundary2D bs(m, ls, ms), bd(m, ld, md);
  EXPECT_LT(bs.record_count(), bd.record_count());
  EXPECT_LE(bs.nodes_with_records(), bs.record_count());
}

}  // namespace
}  // namespace mcc::core
