// Campaign layer tests: sweep.* parsing and resolution, grid expansion,
// coordinate-derived seeds (permutation invariance), shard-count-invariant
// merging, the failure-point path, mcc.campaign/1 schema validation, and
// the golden pin of the churn_saturation campaign at its CI smoke shape
// (the ROADMAP's large-mesh saturation-vs-churn sweep; full shape in
// docs/api.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>

#include "api/campaign.h"
#include "api/experiment.h"

namespace mcc::api {
namespace {

Configuration demo_base() {
  Configuration cfg;
  cfg.set("driver", "route_demo");
  cfg.set("dims", "2");
  cfg.set("k", "12");
  cfg.set("fault_rate", "0.05");
  return cfg;
}

// ---------------------------------------------------------------------------
// sweep.* parsing and resolution

TEST(SweepConfig, UnknownBaseKeyGetsSuggestion) {
  Configuration cfg;
  try {
    cfg.set("sweep.fault_rte", "0.1, 0.2");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("fault_rate"), std::string::npos);
  }
}

TEST(SweepConfig, ElementsValidatePerElement) {
  Configuration cfg;
  EXPECT_THROW(cfg.set("sweep.k", "8, banana"), ConfigError);
  EXPECT_THROW(cfg.set("sweep.fault_rate", "0.1, 7.0"), ConfigError);  // range
  EXPECT_THROW(cfg.set("sweep.k", "8,, 12"), ConfigError);  // empty element
  EXPECT_NO_THROW(cfg.set("sweep.k", "8, 12"));
}

TEST(SweepConfig, PlumbingKeysCannotBeSwept) {
  Configuration cfg;
  EXPECT_THROW(cfg.set("sweep.report_json", "a.json, b.json"), ConfigError);
  EXPECT_THROW(cfg.set("sweep.smoke", "0, 1"), ConfigError);
  EXPECT_THROW(cfg.set("sweep.max_points", "4, 8"), ConfigError);
}

TEST(SweepConfig, MalformedZipNamesAreErrors) {
  Configuration cfg;
  EXPECT_THROW(cfg.set("sweep.zip.k", "1, 2"), ConfigError);   // no member
  EXPECT_THROW(cfg.set("sweep.zip..k", "1, 2"), ConfigError);  // empty group
}

TEST(SweepConfig, SemicolonSweepsWholeLists) {
  Configuration cfg = demo_base();
  cfg.set("sweep.rates", "0.01, 0.02; 0.05, 0.06");
  const auto axes = cfg.sweep_axes();
  ASSERT_EQ(axes.size(), 1u);
  ASSERT_EQ(axes[0].points.size(), 2u);
  EXPECT_EQ(axes[0].points[0][0], "0.01, 0.02");
  EXPECT_EQ(axes[0].points[1][0], "0.05, 0.06");
  // Comma-only splits element-wise even for list-typed keys.
  cfg.set("sweep.rates", "0.01, 0.02");
  const auto axes2 = cfg.sweep_axes();
  ASSERT_EQ(axes2[0].points.size(), 2u);
  EXPECT_EQ(axes2[0].points[0][0], "0.01");
}

TEST(SweepConfig, ZipGroupsAssembleAndLengthCheck) {
  Configuration cfg = demo_base();
  cfg.set("sweep.zip.mesh.k", "8, 12, 16");
  cfg.set("sweep.zip.mesh.fault_rate", "0.02, 0.05, 0.10");
  const auto axes = cfg.sweep_axes();
  ASSERT_EQ(axes.size(), 1u);
  EXPECT_EQ(axes[0].label, "mesh");
  ASSERT_EQ(axes[0].keys, (std::vector<std::string>{"k", "fault_rate"}));
  ASSERT_EQ(axes[0].points.size(), 3u);
  EXPECT_EQ(axes[0].points[1],
            (std::vector<std::string>{"12", "0.05"}));

  cfg.set("sweep.zip.mesh.fault_rate", "0.02, 0.05");  // now mismatched
  EXPECT_THROW(cfg.sweep_axes(), ConfigError);
}

TEST(SweepConfig, SmokePinsApplyUnderSmokeOnly) {
  Configuration cfg = demo_base();
  cfg.set("sweep.k", "8, 12, 16");
  cfg.set("smoke.sweep.k", "6");
  EXPECT_EQ(cfg.sweep_axes()[0].points.size(), 3u);
  cfg.set("smoke", "1");
  ASSERT_EQ(cfg.sweep_axes()[0].points.size(), 1u);
  EXPECT_EQ(cfg.sweep_axes()[0].points[0][0], "6");
  // A later explicit sweep line beats the pin (last writer wins).
  cfg.set("sweep.k", "10, 14");
  EXPECT_EQ(cfg.sweep_axes()[0].points.size(), 2u);
}

TEST(SweepConfig, EchoCarriesSweepLinesAndStripRemovesThem) {
  Configuration cfg = demo_base();
  cfg.set("sweep.k", "8, 12");
  const auto echoed = cfg.echo();
  const auto it = std::find_if(
      echoed.begin(), echoed.end(),
      [](const auto& kv) { return kv.first == "sweep.k"; });
  ASSERT_NE(it, echoed.end());
  EXPECT_EQ(it->second, "8, 12");
  // Replaying the echo reproduces the sweep.
  Configuration replay;
  for (const auto& [k, v] : echoed) replay.set(k, v);
  EXPECT_TRUE(replay.has_sweeps());

  EXPECT_FALSE(cfg.strip_sweeps().has_sweeps());
  EXPECT_TRUE(cfg.has_sweeps());
}

TEST(SweepConfig, ExperimentRejectsCampaignConfigs) {
  Configuration cfg = demo_base();
  cfg.set("sweep.k", "8, 12");
  EXPECT_THROW(Experiment{std::move(cfg)}, ConfigError);
}

// ---------------------------------------------------------------------------
// expansion

TEST(CampaignExpansion, FirstDeclaredAxisVariesSlowest) {
  Configuration cfg = demo_base();
  cfg.set("sweep.fault_rate", "0.05, 0.10");
  cfg.set("sweep.k", "8, 12, 16");
  const Campaign campaign(std::move(cfg));
  ASSERT_EQ(campaign.points().size(), 6u);
  using Coords = std::vector<std::pair<std::string, std::string>>;
  EXPECT_EQ(campaign.points()[0].coords,
            (Coords{{"fault_rate", "0.05"}, {"k", "8"}}));
  EXPECT_EQ(campaign.points()[1].coords,
            (Coords{{"fault_rate", "0.05"}, {"k", "12"}}));
  EXPECT_EQ(campaign.points()[3].coords,
            (Coords{{"fault_rate", "0.10"}, {"k", "8"}}));
}

TEST(CampaignExpansion, ZipGroupIsOneAxis) {
  Configuration cfg = demo_base();
  cfg.set("sweep.zip.mesh.k", "8, 12");
  cfg.set("sweep.zip.mesh.fault_rate", "0.02, 0.08");
  cfg.set("sweep.policy", "model, oracle");
  const Campaign campaign(std::move(cfg));
  ASSERT_EQ(campaign.points().size(), 4u);  // 2 (zip) x 2, not 2 x 2 x 2
  using Coords = std::vector<std::pair<std::string, std::string>>;
  EXPECT_EQ(campaign.points()[3].coords,
            (Coords{{"k", "12"}, {"fault_rate", "0.08"}, {"policy",
                                                          "oracle"}}));
}

TEST(CampaignExpansion, MaxPointsCapTrips) {
  Configuration cfg = demo_base();
  cfg.set("sweep.k", "8, 10, 12, 14");
  cfg.set("max_points", "3");
  EXPECT_THROW(Campaign{std::move(cfg)}, ConfigError);
}

TEST(CampaignExpansion, DuplicateSweptKeyRejected) {
  Configuration cfg = demo_base();
  cfg.set("sweep.k", "8, 12");
  cfg.set("sweep.zip.g.k", "8, 12");
  EXPECT_THROW(Campaign{std::move(cfg)}, ConfigError);
}

TEST(CampaignExpansion, UnknownAxisValueFailsBeforeRunning) {
  Configuration cfg = demo_base();
  // Registry resolution happens at expansion: no sibling burns compute.
  cfg.set("sweep.policy", "model, bogus");
  EXPECT_THROW(Campaign{std::move(cfg)}, ConfigError);
}

TEST(CampaignExpansion, RuntimeOnlyBadCombinationBecomesAFailedPoint) {
  Configuration cfg = demo_base();
  // figure5 exists only in 3-D; the pattern's dims support is checked when
  // faults are drawn, so the point fails at run time — flagged, siblings
  // intact (the failure-point contract).
  cfg.set("sweep.fault_pattern", "uniform, figure5");
  const Campaign campaign(std::move(cfg));
  const auto results = campaign.run_shard(1, 1, nullptr);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_TRUE(results[1].failed);
}

// ---------------------------------------------------------------------------
// coordinate-derived seeds

TEST(CampaignSeeds, CoordOrderDoesNotMatter) {
  const std::vector<std::pair<std::string, std::string>> a{{"k", "8"},
                                                           {"churn", "2"}};
  const std::vector<std::pair<std::string, std::string>> b{{"churn", "2"},
                                                           {"k", "8"}};
  EXPECT_EQ(derive_point_seed(7, a), derive_point_seed(7, b));
  EXPECT_NE(derive_point_seed(7, a), derive_point_seed(8, a));
  const std::vector<std::pair<std::string, std::string>> c{{"churn", "2"},
                                                           {"k", "12"}};
  EXPECT_NE(derive_point_seed(7, a), derive_point_seed(7, c));
}

TEST(CampaignSeeds, ThreadsAxisDoesNotPerturbSeeds) {
  // threads= is a wall-clock knob: a sweep.threads axis must give every
  // point the same seed as its siblings (and as the no-threads-coordinate
  // point), so the thread-count-invariance of the parallel tick stays
  // observable as identical point tables (configs/e11_parallel.cfg).
  const std::vector<std::pair<std::string, std::string>> t1{{"k", "8"},
                                                            {"threads", "1"}};
  const std::vector<std::pair<std::string, std::string>> t4{{"k", "8"},
                                                            {"threads", "4"}};
  const std::vector<std::pair<std::string, std::string>> none{{"k", "8"}};
  EXPECT_EQ(derive_point_seed(7, t1), derive_point_seed(7, t4));
  EXPECT_EQ(derive_point_seed(7, t1), derive_point_seed(7, none));
}

/// Runs a route_demo campaign serially and indexes seed + report dump by
/// a canonical (sorted) coordinate label.
std::map<std::string, std::pair<uint64_t, std::string>> run_by_coords(
    const std::vector<std::string>& sweeps) {
  Configuration cfg = demo_base();
  for (size_t i = 0; i < sweeps.size(); i += 2)
    cfg.set(sweeps[i], sweeps[i + 1]);
  const Campaign campaign(std::move(cfg));
  const auto results = campaign.run_shard(1, 1, nullptr);
  std::map<std::string, std::pair<uint64_t, std::string>> out;
  for (const auto& r : results) {
    auto coords = campaign.points()[r.index].coords;
    std::sort(coords.begin(), coords.end());
    std::string label;
    for (const auto& [k, v] : coords) label += k + "=" + v + ";";
    out[label] = {campaign.points()[r.index].seed, r.report.dump()};
  }
  return out;
}

TEST(CampaignSeeds, PermutingSweepValuesLeavesEveryPointIntact) {
  // Same axes, values listed in a different order: every point keeps its
  // seed AND its entire report, bit for bit (only indices move).
  const auto forward =
      run_by_coords({"sweep.fault_rate", "0.05, 0.10", "sweep.k", "8, 12"});
  const auto shuffled =
      run_by_coords({"sweep.fault_rate", "0.10, 0.05", "sweep.k", "12, 8"});
  ASSERT_EQ(forward.size(), 4u);
  ASSERT_EQ(shuffled.size(), 4u);
  for (const auto& [label, seed_and_report] : forward) {
    const auto it = shuffled.find(label);
    ASSERT_NE(it, shuffled.end()) << label;
    EXPECT_EQ(it->second.first, seed_and_report.first) << label;
    EXPECT_EQ(it->second.second, seed_and_report.second) << label;
  }
}

TEST(CampaignSeeds, AxisDeclarationOrderDoesNotChangeSeeds) {
  // Swapping which axis is declared first reorders points and their
  // names, but each coordinate combination keeps its derived seed.
  const auto forward =
      run_by_coords({"sweep.fault_rate", "0.05, 0.10", "sweep.k", "8, 12"});
  const auto swapped =
      run_by_coords({"sweep.k", "8, 12", "sweep.fault_rate", "0.05, 0.10"});
  ASSERT_EQ(forward.size(), swapped.size());
  for (const auto& [label, seed_and_report] : forward) {
    const auto it = swapped.find(label);
    ASSERT_NE(it, swapped.end()) << label;
    EXPECT_EQ(it->second.first, seed_and_report.first) << label;
  }
}

// ---------------------------------------------------------------------------
// sharding and merging

TEST(CampaignSharding, MergeIsShardCountAndOrderInvariant) {
  Configuration cfg = demo_base();
  cfg.set("sweep.fault_rate", "0.05, 0.10");
  cfg.set("sweep.policy", "model, oracle");
  const Campaign campaign(std::move(cfg));

  const Json serial =
      Campaign::merge({campaign.to_json(campaign.run_shard(1, 1, nullptr),
                                        1, 1)});
  const std::string want = serial.dump_pretty();

  for (const int n : {2, 3, 4}) {
    std::vector<Json> partials;
    for (int s = n; s >= 1; --s)  // reversed completion order on purpose
      partials.push_back(
          campaign.to_json(campaign.run_shard(s, n, nullptr), s, n));
    EXPECT_EQ(Campaign::merge(partials).dump_pretty(), want) << n;
  }
}

TEST(CampaignSharding, MergeRejectsMissingDuplicateAndForeignPoints) {
  Configuration cfg = demo_base();
  cfg.set("sweep.fault_rate", "0.05, 0.10");
  const Campaign campaign(std::move(cfg));
  const Json p1 = campaign.to_json(campaign.run_shard(1, 2, nullptr), 1, 2);
  const Json p2 = campaign.to_json(campaign.run_shard(2, 2, nullptr), 2, 2);
  EXPECT_THROW(Campaign::merge({p1}), ConfigError);           // missing 1
  EXPECT_THROW(Campaign::merge({p1, p2, p1}), ConfigError);   // duplicate

  Configuration other = demo_base();
  other.set("sweep.fault_rate", "0.05, 0.20");
  const Campaign foreign(std::move(other));
  const Json f2 = foreign.to_json(foreign.run_shard(2, 2, nullptr), 2, 2);
  EXPECT_THROW(Campaign::merge({p1, f2}), ConfigError);       // header clash
}

TEST(CampaignSharding, MergeErrorsNameTheMissingAndDuplicatedShards) {
  Configuration cfg = demo_base();
  cfg.set("sweep.fault_rate", "0.02, 0.05, 0.08, 0.10");
  const Campaign campaign(std::move(cfg));
  const Json p1 = campaign.to_json(campaign.run_shard(1, 3, nullptr), 1, 3);
  const Json p2 = campaign.to_json(campaign.run_shard(2, 3, nullptr), 2, 3);
  try {
    Campaign::merge({p1});
    FAIL() << "merge accepted a partial set";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    // Exactly the absent points and the shards that would supply them.
    EXPECT_NE(what.find("missing points 1, 2"), std::string::npos) << what;
    EXPECT_NE(what.find("missing shards: 2/3, 3/3"), std::string::npos)
        << what;
  }
  try {
    Campaign::merge({p1, p2, p1});
    FAIL() << "merge accepted a duplicated shard";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicated shards: 1/3"), std::string::npos)
        << what;
    EXPECT_NE(what.find("point 0 arrived more than once"), std::string::npos)
        << what;
  }
}

TEST(CampaignSharding, EmptyShardOfASmallGridIsAValidPartial) {
  Configuration cfg = demo_base();
  cfg.set("sweep.fault_rate", "0.05, 0.10");
  const Campaign campaign(std::move(cfg));
  const auto results = campaign.run_shard(3, 5, nullptr);  // index 2 of 2
  EXPECT_TRUE(results.empty());
  const Json doc = campaign.to_json(results, 3, 5);
  EXPECT_TRUE(validate_report_json(doc).empty());
}

// ---------------------------------------------------------------------------
// failure-point path

void register_flaky_driver() {
  register_builtins();
  if (drivers().contains("campaign_test_flaky")) return;
  drivers().add("campaign_test_flaky",
                [](const Scenario& scn, RunReport& report) {
                  report.metric("k", scn.k);
                  if (scn.k % 2 != 0) report.fail("odd k rejected");
                },
                "test-only: fails on odd mesh edges");
}

TEST(CampaignFailure, FailedPointFlagsCampaignWithoutLosingSiblings) {
  register_flaky_driver();
  Configuration cfg;
  cfg.set("driver", "campaign_test_flaky");
  cfg.set("sweep.k", "8, 9, 10");
  const Campaign campaign(std::move(cfg));
  const auto results = campaign.run_shard(1, 1, nullptr);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_TRUE(results[1].failed);
  EXPECT_FALSE(results[2].failed);

  const Json doc = Campaign::merge({campaign.to_json(results, 1, 1)});
  EXPECT_TRUE(validate_report_json(doc).empty());
  EXPECT_TRUE(doc.find("failed")->as_bool());
  const auto& pts = doc.find("points")->items();
  EXPECT_FALSE(pts[0].find("failed")->as_bool());
  EXPECT_TRUE(pts[1].find("failed")->as_bool());
  EXPECT_EQ(pts[1].find("report")->find("failure")->as_string(),
            "odd k rejected");
  EXPECT_FALSE(pts[2].find("failed")->as_bool());
}

// A worker process that dies of a signal mid-shard must not take the
// campaign down or lose sibling shards: the dead worker's points come back
// as failed PointResults naming the signal, everyone else's results are
// kept, and the merged document still validates.

void register_selfkill_driver() {
  register_builtins();
  if (drivers().contains("campaign_test_selfkill")) return;
  drivers().add("campaign_test_selfkill",
                [](const Scenario& scn, RunReport& report) {
                  report.metric("k", scn.k);
                  if (scn.k == 9) raise(SIGKILL);  // worker dies uncleanly
                },
                "test-only: kills its own process on k == 9");
}

TEST(CampaignFailure, SignalKilledWorkerKeepsSiblingShards) {
  register_selfkill_driver();
  Configuration cfg;
  cfg.set("driver", "campaign_test_selfkill");
  cfg.set("sweep.k", "8, 9, 10");
  const Campaign campaign(std::move(cfg));
  // 3 jobs -> one point per worker; worker 2 (point index 1) gets SIGKILLed.
  const auto results = campaign.run(3, nullptr);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[2].failed);
  EXPECT_TRUE(results[1].failed);
  const std::string why = results[1].report.find("failure")->as_string();
  EXPECT_NE(why.find("killed by signal 9"), std::string::npos) << why;
  EXPECT_NE(why.find("shard 2/3"), std::string::npos) << why;

  // The synthesized points still carry their config echo and merge into a
  // schema-valid campaign document flagged failed.
  const Json doc = Campaign::merge({campaign.to_json(results, 1, 1)});
  EXPECT_TRUE(validate_report_json(doc).empty());
  EXPECT_TRUE(doc.find("failed")->as_bool());
  const auto& pts = doc.find("points")->items();
  EXPECT_FALSE(pts[0].find("failed")->as_bool());
  EXPECT_TRUE(pts[1].find("failed")->as_bool());
  EXPECT_FALSE(pts[2].find("failed")->as_bool());
}

// ---------------------------------------------------------------------------
// mcc.campaign/1 schema validation

TEST(CampaignSchema, CorruptDocumentsAreRejected) {
  Configuration cfg = demo_base();
  cfg.set("sweep.fault_rate", "0.05, 0.10");
  const Campaign campaign(std::move(cfg));
  const Json good =
      Campaign::merge({campaign.to_json(campaign.run_shard(1, 1, nullptr),
                                        1, 1)});
  ASSERT_TRUE(validate_report_json(good).empty());

  const std::string dump = good.dump();
  const auto reparse = [](std::string text) {
    std::string error;
    Json doc = Json::parse(text, error);
    EXPECT_TRUE(error.empty()) << error;
    return doc;
  };
  {  // missing point_count
    std::string t = dump;
    const size_t pos = t.find("\"point_count\"");
    t.replace(pos, 13, "\"point_kount\"");
    EXPECT_FALSE(validate_report_json(reparse(t)).empty());
  }
  {  // complete document with a point missing
    Json doc = reparse(dump);
    Json pts = Json::array();
    pts.push_back(doc.find("points")->items()[0]);
    doc.set("points", std::move(pts));
    EXPECT_FALSE(validate_report_json(doc).empty());
  }
  {  // coords values must be strings (corrupt inside points[], not the
     // header config echo, which also holds a fault_rate entry)
    std::string t = dump;
    const size_t points = t.find("\"points\"");
    ASSERT_NE(points, std::string::npos);
    const size_t pos = t.find("\"fault_rate\":\"0.05\"", points);
    ASSERT_NE(pos, std::string::npos);
    t.replace(pos, 19, "\"fault_rate\":0.0500");
    EXPECT_FALSE(validate_report_json(reparse(t)).empty());
  }
  {  // an invalid nested report poisons the campaign
    std::string t = dump;
    const size_t pos = t.find("\"mcc.run_report/1\"");
    ASSERT_NE(pos, std::string::npos);
    t.replace(pos, 18, "\"mcc.run_report/9\"");
    EXPECT_FALSE(validate_report_json(reparse(t)).empty());
  }
}

// ---------------------------------------------------------------------------
// golden: the churn_saturation campaign at its CI smoke shape. Pins the
// ROADMAP's saturation-vs-churn sweep end to end: sweep resolution under
// smoke pins, expansion, coordinate seeds, the wormhole churn runs
// themselves (bit-stable) and the merged document.

TEST(CampaignGolden, ChurnSaturationSmokeShape) {
  Configuration cfg;
  cfg.load_file(std::string(MCC_CONFIG_DIR) + "/churn_saturation.cfg");
  cfg.set("smoke", "1");
  const Campaign campaign(std::move(cfg));
  ASSERT_EQ(campaign.points().size(), 4u);
  ASSERT_EQ(campaign.axes().size(), 2u);
  EXPECT_EQ(campaign.axes()[0].label, "churn");
  EXPECT_EQ(campaign.axes()[1].label, "rates");

  const auto results = campaign.run_shard(1, 1, nullptr);
  const Json doc = Campaign::merge({campaign.to_json(results, 1, 1)});
  ASSERT_TRUE(validate_report_json(doc).empty());
  EXPECT_FALSE(doc.find("failed")->as_bool());

  // One churn-table row per point (smoke pins ks to the single 10x10
  // mesh). Every cell is deterministic — the wormhole is bit-stable.
  const std::vector<std::vector<std::string>> want = {
      {"10x10", "2.0", "1+0", "335", "0", "0.0458", "11.1", "92.1%", "ok"},
      {"10x10", "2.0", "0+0", "616", "0", "0.0810", "14.1", "97.4%", "ok"},
      {"10x10", "10.0", "5+1", "272", "1", "0.0364", "11.3", "88.1%", "ok"},
      {"10x10", "10.0", "5+2", "588", "3", "0.0762", "13.1", "89.7%", "ok"},
  };
  const auto& pts = doc.find("points")->items();
  ASSERT_EQ(pts.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const Json* tables = pts[i].find("report")->find("tables");
    ASSERT_NE(tables, nullptr);
    const Json& churn = tables->items().front();
    EXPECT_EQ(churn.find("title")->as_string(), "churn");
    const auto& rows = churn.find("rows")->items();
    ASSERT_EQ(rows.size(), 1u) << "point " << i;
    std::vector<std::string> got;
    for (const Json& cell : rows[0].items())
      got.push_back(cell.as_string());
    EXPECT_EQ(got, want[i]) << "point " << i;
  }

  // Shard-split execution of the same campaign merges byte-identically.
  std::vector<Json> partials;
  for (int s = 2; s >= 1; --s)
    partials.push_back(
        campaign.to_json(campaign.run_shard(s, 2, nullptr), s, 2));
  EXPECT_EQ(Campaign::merge(partials).dump_pretty(), doc.dump_pretty());
}

}  // namespace
}  // namespace mcc::api
