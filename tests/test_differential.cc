// Differential property tests across the whole decision stack: for seeded
// randomized fault sets in 2-D and 3-D,
//   * the model's feasibility answer (detection walkers / floods) must
//     agree exactly with the reachability oracle for safe strict pairs;
//   * whenever feasibility passes, per-hop detection guidance
//     (DetectGuidance2D / FloodGuidance3D) under EVERY RoutePolicy delivers
//     a path that is minimal, connected and fault-free — and so does the
//     oracle guidance;
//   * no safe-set guidance ever delivers where OracleGuidance proves that
//     no safe minimal path exists (delivery would exhibit such a path);
//   * the boundary-record machinery is SOUND but conservative: a record-
//     guided route, when it arrives, is always minimal and fault-free, and
//     the static chain test (theorem1_feasible) never admits a blocked
//     pair — but on dense interlocked fault patterns both may reject
//     feasible pairs (the record router by wedging, the chain test by
//     over-merging). The conservatism is bounded here so it cannot silently
//     grow.
#include <gtest/gtest.h>

#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/reachability.h"
#include "core/router.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Coord3;

using util::SweepParam;

void check_minimal_fault_free2(const RouteResult2D& r, const LabelField2D& l,
                               Coord2 s, Coord2 d, const char* what) {
  ASSERT_TRUE(r.delivered) << what << " failed: " << r.failure;
  ASSERT_EQ(r.path.front(), s) << what;
  ASSERT_EQ(r.path.back(), d) << what;
  ASSERT_EQ(r.hops(), manhattan(s, d)) << what << " path not minimal";
  for (size_t i = 0; i < r.path.size(); ++i) {
    EXPECT_NE(l.state(r.path[i]), NodeState::Faulty)
        << what << " path enters dead node " << r.path[i];
    if (i > 0) {
      ASSERT_EQ(manhattan(r.path[i - 1], r.path[i]), 1) << what;
    }
  }
}

void check_minimal_fault_free3(const RouteResult3D& r, const LabelField3D& l,
                               Coord3 s, Coord3 d, const char* what) {
  ASSERT_TRUE(r.delivered) << what << " failed: " << r.failure;
  ASSERT_EQ(r.path.front(), s) << what;
  ASSERT_EQ(r.path.back(), d) << what;
  ASSERT_EQ(r.hops(), manhattan(s, d)) << what << " path not minimal";
  for (size_t i = 0; i < r.path.size(); ++i) {
    EXPECT_NE(l.state(r.path[i]), NodeState::Faulty)
        << what << " path enters dead node " << r.path[i];
    if (i > 0) {
      ASSERT_EQ(manhattan(r.path[i - 1], r.path[i]), 1) << what;
    }
  }
}

class Differential2D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Differential2D, DetectIsExactAndGuidedRoutesHonorIt) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = (seed % 2 == 0)
                     ? mesh::inject_uniform(m, rate, rng)
                     : mesh::inject_clustered(
                           m, static_cast<int>(rate * size * size), 3, rng);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  const Boundary2D b(m, l, mccs);
  util::Rng prng(seed * 131 + 7);

  int feasible_seen = 0, infeasible_seen = 0;
  int record_routes = 0, record_wedges = 0;
  for (int t = 0; t < pairs * 12; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;

    const ReachField2D oracle(m, l, d, NodeFilter::SafeOnly);
    const bool safe_path_exists = oracle.feasible(s);
    const bool model_says = detect2d(m, l, s, d).feasible();
    // The paper's central claim, which DOES hold for the walker form: the
    // limited-information decision is exact. (For safe endpoints SafeOnly
    // and NonFaulty reachability coincide.)
    ASSERT_EQ(model_says, safe_path_exists)
        << "s=" << s << " d=" << d << " seed=" << seed;

    // The static chain test must never admit a blocked pair (soundness;
    // it IS allowed to reject feasible ones — counted below via records).
    if (b.theorem1_feasible(s, d)) {
      EXPECT_TRUE(safe_path_exists)
          << "theorem1 admitted a blocked pair s=" << s << " d=" << d;
    }

    const RecordGuidance2D records(l, mccs, b, d);
    const DetectGuidance2D detect(m, l, d);
    const OracleGuidance2D og(m, l, d);
    if (safe_path_exists) {
      ++feasible_seen;
      for (const RoutePolicy p : kAllPolicies) {
        util::Rng r1(seed ^ (t * 2654435761u));
        check_minimal_fault_free2(route2d(m, s, d, detect, p, r1), l, s, d,
                                  "detect");
        util::Rng r2(seed ^ (t * 40503u) ^ 0xD1FF);
        check_minimal_fault_free2(route2d(m, s, d, og, p, r2), l, s, d,
                                  "oracle");
        // Record guidance is sound: when it delivers, the path is minimal
        // and fault-free; when it wedges, that is the documented chain
        // conservatism, tallied below.
        util::Rng r3(seed ^ (t * 7919u) ^ 0xABCD);
        const auto rr = route2d(m, s, d, records, p, r3);
        ++record_routes;
        if (rr.delivered) {
          check_minimal_fault_free2(rr, l, s, d, "records");
        } else {
          ++record_wedges;
        }
      }
    } else {
      ++infeasible_seen;
      // No safe minimal path exists: safe-set guidances must not deliver.
      for (const RoutePolicy p : kAllPolicies) {
        util::Rng r1(seed ^ (t * 7919u));
        EXPECT_FALSE(route2d(m, s, d, detect, p, r1).delivered)
            << "delivered across an infeasible pair s=" << s << " d=" << d;
        util::Rng r2(seed ^ (t * 104729u));
        EXPECT_FALSE(route2d(m, s, d, records, p, r2).delivered)
            << "records delivered across an infeasible pair s=" << s
            << " d=" << d;
      }
    }
  }
  // The sweep must actually exercise both branches, and the record rule's
  // conservatism must stay rare (it is zero on most parameter cells).
  EXPECT_GT(feasible_seen, 0) << "sweep degenerated: no feasible pairs";
  if (rate >= 0.15) {
    EXPECT_GT(infeasible_seen, 0) << "sweep degenerated: nothing blocked";
  }
  EXPECT_LE(record_wedges * 20, record_routes)
      << "record guidance wedged on >5% of feasible routes";
}

INSTANTIATE_TEST_SUITE_P(
    Random, Differential2D,
    ::testing::Values(SweepParam{10, 0.15, 9001, 40},
                      SweepParam{12, 0.20, 9002, 40},
                      SweepParam{16, 0.15, 9003, 30},
                      SweepParam{16, 0.25, 9004, 30},
                      SweepParam{20, 0.20, 9005, 25},
                      SweepParam{24, 0.15, 9006, 20},
                      SweepParam{24, 0.30, 9007, 20},
                      SweepParam{32, 0.20, 9008, 15}));

class Differential3D : public ::testing::TestWithParam<SweepParam> {};

// 3-D is where the differential harness earns its keep: the three-surface
// flood detection is exact across the paper's operating fault rates
// (<= 15%, asserted strictly) but drifts into a bounded two-sided
// approximation on extreme dense patterns — something the fixed-seed
// sweeps of test_feasibility3d never surfaced. Oracle-guided routing
// always honors true feasibility; flood-guided routing is sound (its
// deliveries are minimal and fault-free, and it never crosses a truly
// blocked pair) with bounded conservatism.
TEST_P(Differential3D, FloodsBoundedExactAndGuidedRoutesSound) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const auto f =
      (seed % 2 == 0)
          ? mesh::inject_uniform(m, rate, rng)
          : mesh::inject_clustered(
                m, static_cast<int>(rate * size * size * size), 4, rng);
  const LabelField3D l(m, f);
  util::Rng prng(seed * 31 + 3);

  int feasible_seen = 0, checked = 0, detect_disagreements = 0;
  int flood_routes = 0, flood_wedges = 0;
  for (int t = 0; t < pairs * 12; ++t) {
    const auto [s, d] = util::random_strict_pair3d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;

    const ReachField3D oracle(m, l, d, NodeFilter::SafeOnly);
    const bool safe_path_exists = oracle.feasible(s);
    const bool model_says = detect3d(m, l, s, d).feasible();
    ++checked;
    if (model_says != safe_path_exists) {
      ++detect_disagreements;
      // Inside the paper's operating envelope the decision must be exact.
      EXPECT_GT(rate, 0.15)
          << "detect3d wrong at moderate rate: s=" << s << " d=" << d;
    }

    const FloodGuidance3D flood(m, l, d);
    const OracleGuidance3D og(m, l, d);
    if (safe_path_exists) {
      ++feasible_seen;
      for (const RoutePolicy p : kAllPolicies) {
        util::Rng r2(seed ^ (t * 40503u) ^ 0xD1FF);
        check_minimal_fault_free3(route3d(m, s, d, og, p, r2), l, s, d,
                                  "oracle");
        util::Rng r1(seed ^ (t * 2654435761u));
        const auto fr = route3d(m, s, d, flood, p, r1);
        ++flood_routes;
        if (fr.delivered) {
          check_minimal_fault_free3(fr, l, s, d, "flood");
        } else {
          ++flood_wedges;
        }
      }
    } else {
      for (const RoutePolicy p : kAllPolicies) {
        util::Rng r1(seed ^ (t * 7919u));
        EXPECT_FALSE(route3d(m, s, d, flood, p, r1).delivered)
            << "delivered across an infeasible pair s=" << s << " d=" << d;
      }
    }
  }
  EXPECT_GT(feasible_seen, 0) << "sweep degenerated: no feasible pairs";
  // Bounded approximation: the flood decision may err on at most 2% of
  // pairs, and flood-guided routing may wedge on at most 5% of feasible
  // routes, even on the extreme cells.
  EXPECT_LE(detect_disagreements * 50, checked)
      << "detect3d disagreed with the oracle on >2% of pairs";
  EXPECT_LE(flood_wedges * 20, flood_routes)
      << "flood guidance wedged on >5% of feasible routes";
  // Mid-route wedges appear earlier than whole-pair decision errors (the
  // remaining pair degenerates as the route closes in), so the wedge-free
  // envelope is tighter than the exactness envelope: clean at the paper's
  // evaluated ~10% fault rate, merely bounded beyond it.
  if (rate <= 0.10) {
    EXPECT_EQ(flood_wedges, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, Differential3D,
    ::testing::Values(SweepParam{6, 0.10, 9101, 30},
                      SweepParam{6, 0.20, 9102, 30},
                      SweepParam{8, 0.12, 9103, 25},
                      SweepParam{8, 0.25, 9104, 25},
                      SweepParam{10, 0.15, 9105, 18},
                      SweepParam{10, 0.30, 9106, 15},
                      SweepParam{12, 0.20, 9107, 12}));

// The safe-reach reduction agrees with the reachability oracle on every
// pair of its box, including fully degenerate ones — it is the primitive
// the per-hop guidances use once the remaining pair leaves the strict
// regime.
TEST(SafeReach, MatchesOracleOnDegenerateBoxes) {
  const mesh::Mesh3D m(7, 7, 7);
  util::Rng rng(515);
  const auto f = mesh::inject_uniform(m, 0.18, rng);
  const LabelField3D l(m, f);
  util::Rng prng(516);
  int checked = 0;
  for (int t = 0; t < 400; ++t) {
    Coord3 s{prng.uniform_int(0, 6), prng.uniform_int(0, 6),
             prng.uniform_int(0, 6)};
    Coord3 d{prng.uniform_int(s.x, 6), prng.uniform_int(s.y, 6),
             prng.uniform_int(s.z, 6)};
    if (l.state(s) == NodeState::Faulty) continue;
    const ReachField3D oracle(m, l, d, NodeFilter::SafeOnly);
    EXPECT_EQ(safe_reach_box3(l, s, d), oracle.feasible(s))
        << "s=" << s << " d=" << d;
    ++checked;
  }
  EXPECT_GT(checked, 200);
}

}  // namespace
}  // namespace mcc::core
