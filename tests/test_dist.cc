// Distributed campaign tests: the lease scheduler under a fake clock
// (expiry, reissue, first-result-wins dedup), address/line plumbing, the
// NDJSON result journal and --resume determinism, the welcome-header
// config-echo replay fixpoint, and socket end-to-end runs (unix + TCP)
// proving a dist execution's merged document is byte-identical to the
// serial one. The multi-process fixtures (SIGKILLed workers, killed
// coordinators) live in tools/CMakeLists.txt as dist_* CTest cases.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/campaign.h"
#include "api/config.h"
#include "dist/clock.h"
#include "dist/coordinator.h"
#include "dist/net.h"
#include "dist/protocol.h"
#include "dist/scheduler.h"
#include "dist/worker.h"

namespace mcc::dist {
namespace {

using api::Campaign;
using api::ConfigError;
using api::Configuration;
using api::Json;

Configuration demo_base() {
  Configuration cfg;
  cfg.set("name", "dist_demo");
  cfg.set("driver", "route_demo");
  cfg.set("dims", "2");
  cfg.set("k", "12");
  cfg.set("sweep.fault_rate", "0.02, 0.05, 0.08, 0.10");
  return cfg;
}

std::string serial_doc(const Campaign& campaign) {
  return Campaign::merge(
             {campaign.to_json(campaign.run_shard(1, 1, nullptr), 1, 1)})
      .dump_pretty();
}

// ---------------------------------------------------------------------------
// Scheduler under a fake clock

TEST(Scheduler, LeasesBatchesAndCountsDispatch) {
  FakeClock clk;
  Scheduler s(5, 2, 1000);
  EXPECT_FALSE(s.done());
  EXPECT_EQ(s.remaining(), 5u);
  EXPECT_EQ(s.lease("a", clk.now_ms()), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(s.lease("b", clk.now_ms()), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(s.lease("c", clk.now_ms()), (std::vector<size_t>{4}));
  EXPECT_TRUE(s.lease("a", clk.now_ms()).empty());  // everything is out
  EXPECT_EQ(s.counters().dispatched, 5u);
  EXPECT_EQ(s.counters().completed, 0u);
}

TEST(Scheduler, ExpiryReissuesToTheFrontAndHeartbeatExtends) {
  FakeClock clk;
  Scheduler s(4, 2, 100);
  ASSERT_EQ(s.lease("a", clk.now_ms()), (std::vector<size_t>{0, 1}));
  clk.advance(50);
  s.heartbeat("a", clk.now_ms());  // deadline moves to t=150
  clk.advance(60);                 // t=110 — inside the extended lease
  EXPECT_EQ(s.expire(clk.now_ms()), 0u);
  clk.advance(41);  // t=151 — past it
  EXPECT_EQ(s.expire(clk.now_ms()), 2u);
  EXPECT_EQ(s.counters().reissued, 2u);
  // The reissued points come back out first (front of the queue).
  EXPECT_EQ(s.lease("b", clk.now_ms()), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(s.counters().dispatched, 4u);
}

TEST(Scheduler, ResultsReArmTheLeaseDeadline) {
  FakeClock clk;
  Scheduler s(4, 4, 100);
  ASSERT_EQ(s.lease("a", clk.now_ms()).size(), 4u);
  for (int i = 0; i < 3; ++i) {
    clk.advance(90);  // each result lands inside the re-armed window
    EXPECT_TRUE(s.complete("a", static_cast<size_t>(i), clk.now_ms()));
    EXPECT_EQ(s.expire(clk.now_ms()), 0u);
  }
  clk.advance(101);  // nothing heard since the last result
  EXPECT_EQ(s.expire(clk.now_ms()), 1u);  // only point 3 was outstanding
}

TEST(Scheduler, LateResultFromAnExpiredWorkerIsADuplicate) {
  FakeClock clk;
  Scheduler s(2, 2, 100);
  ASSERT_EQ(s.lease("a", clk.now_ms()).size(), 2u);
  clk.advance(200);
  EXPECT_EQ(s.expire(clk.now_ms()), 2u);
  ASSERT_EQ(s.lease("b", clk.now_ms()).size(), 2u);
  EXPECT_TRUE(s.complete("b", 0, clk.now_ms()));
  EXPECT_FALSE(s.complete("a", 0, clk.now_ms()));  // the slow copy arrives
  EXPECT_EQ(s.counters().duplicates, 1u);
  EXPECT_TRUE(s.complete("b", 1, clk.now_ms()));
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.counters().completed, 2u);
  // dispatched = completed + reissued on every run.
  EXPECT_EQ(s.counters().dispatched,
            s.counters().completed + s.counters().reissued);
}

TEST(Scheduler, DropWorkerRequeuesOnlyUnfinishedPoints) {
  FakeClock clk;
  Scheduler s(3, 3, 1000);
  ASSERT_EQ(s.lease("a", clk.now_ms()).size(), 3u);
  EXPECT_TRUE(s.complete("a", 0, clk.now_ms()));
  EXPECT_EQ(s.drop_worker("a"), 2u);
  EXPECT_EQ(s.counters().reissued, 2u);
  EXPECT_EQ(s.lease("b", clk.now_ms()), (std::vector<size_t>{1, 2}));
  // A drop after completion requeues nothing.
  EXPECT_TRUE(s.complete("b", 1, clk.now_ms()));
  EXPECT_TRUE(s.complete("b", 2, clk.now_ms()));
  EXPECT_EQ(s.drop_worker("b"), 0u);
  EXPECT_EQ(s.counters().reissued, 2u);
  EXPECT_TRUE(s.done());
}

TEST(Scheduler, MarkDoneSkipsDispatchWithoutCounting) {
  FakeClock clk;
  Scheduler s(4, 4, 1000);
  s.mark_done(1);
  s.mark_done(3);
  EXPECT_EQ(s.remaining(), 2u);
  EXPECT_EQ(s.lease("a", clk.now_ms()), (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(s.complete("a", 0, clk.now_ms()));
  EXPECT_TRUE(s.complete("a", 2, clk.now_ms()));
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.counters().dispatched, 2u);
  EXPECT_EQ(s.counters().completed, 2u);
}

// ---------------------------------------------------------------------------
// net plumbing

TEST(Net, ParseAddressForms) {
  Address u = parse_address("unix:/tmp/x.sock");
  EXPECT_TRUE(u.unix_domain);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.str(), "unix:/tmp/x.sock");
  Address t = parse_address("tcp:127.0.0.1:7070");
  EXPECT_FALSE(t.unix_domain);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 7070);
  EXPECT_THROW(parse_address("udp:1.2.3.4:1"), ConfigError);
  EXPECT_THROW(parse_address("unix:"), ConfigError);
  EXPECT_THROW(parse_address("tcp:hostonly"), ConfigError);
  EXPECT_THROW(parse_address("tcp:1.2.3.4:notaport"), ConfigError);
  EXPECT_THROW(parse_address("tcp:1.2.3.4:70000"), ConfigError);
}

TEST(Net, LineBufferReassemblesTornChunks) {
  LineBuffer buf;
  std::string line;
  buf.feed("{\"a\":1}\n{\"b\"", 12);
  ASSERT_TRUE(buf.next(line));
  EXPECT_EQ(line, "{\"a\":1}");
  EXPECT_FALSE(buf.next(line));  // torn tail stays buffered
  buf.feed(":2}\n", 4);
  ASSERT_TRUE(buf.next(line));
  EXPECT_EQ(line, "{\"b\":2}");
}

TEST(Protocol, RejectsForeignAndMalformedLines) {
  EXPECT_THROW(proto::parse("not json"), std::runtime_error);
  EXPECT_THROW(proto::parse("{\"type\":\"hello\"}"), std::runtime_error);
  EXPECT_THROW(proto::parse("{\"schema\":\"mcc.dist/1\"}"),
               std::runtime_error);
  const Json m = proto::parse(proto::hello("w").dump());
  EXPECT_EQ(proto::type_of(m), "hello");
}

// ---------------------------------------------------------------------------
// journal + resume

struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path(name + "." + std::to_string(getpid()) + ".tmp") {}
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(Journal, RoundTripsResultsWithFirstResultWinsDedup) {
  const Campaign campaign(demo_base());
  const auto all = campaign.run_shard(1, 1, nullptr);
  TempPath tp("test_dist_journal");
  {
    api::JournalWriter jw(tp.path, campaign.journal_header(), true);
    jw.append(campaign.point_json(all[2]));  // completion order, not index
    jw.append(campaign.point_json(all[0]));
    jw.append(campaign.point_json(all[2]));  // a reissued duplicate
  }
  const auto done = campaign.load_journal(tp.path);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].index, 0u);
  EXPECT_EQ(done[1].index, 2u);
  EXPECT_EQ(campaign.missing_points(done),
            (std::vector<size_t>{1, 3}));
}

TEST(Journal, TornFinalLineIsToleratedTornMiddleIsNot) {
  const Campaign campaign(demo_base());
  const auto all = campaign.run_shard(1, 1, nullptr);
  TempPath tp("test_dist_torn");
  {
    api::JournalWriter jw(tp.path, campaign.journal_header(), true);
    jw.append(campaign.point_json(all[0]));
  }
  {
    std::ofstream f(tp.path, std::ios::app);
    f << "{\"index\":1,\"coo";  // the append a dying process never finished
  }
  const auto done = campaign.load_journal(tp.path);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].index, 0u);

  // The same torn text mid-file is corruption, not a torn tail.
  {
    std::ofstream f(tp.path, std::ios::app);
    f << "\n" << campaign.point_json(all[2]).dump() << "\n";
  }
  EXPECT_THROW(campaign.load_journal(tp.path), ConfigError);
}

TEST(Journal, HeaderFromADifferentCampaignIsRejected) {
  const Campaign campaign(demo_base());
  Configuration other = demo_base();
  other.set("k", "10");
  const Campaign foreign(std::move(other));
  TempPath tp("test_dist_foreign");
  {
    api::JournalWriter jw(tp.path, foreign.journal_header(), true);
  }
  EXPECT_THROW(campaign.load_journal(tp.path), ConfigError);
  EXPECT_NO_THROW(foreign.load_journal(tp.path));
}

TEST(Journal, ResumeReproducesTheSerialDocumentByteForByte) {
  const Campaign campaign(demo_base());
  const auto all = campaign.run_shard(1, 1, nullptr);
  const std::string want = serial_doc(campaign);

  // An interrupted run journaled points 2 and 0 (completion order) and
  // died. Resume: load, run only the missing points, fold.
  TempPath tp("test_dist_resume");
  {
    api::JournalWriter jw(tp.path, campaign.journal_header(), true);
    jw.append(campaign.point_json(all[2]));
    jw.append(campaign.point_json(all[0]));
  }
  auto results = campaign.load_journal(tp.path);
  const auto missing = campaign.missing_points(results);
  EXPECT_EQ(missing, (std::vector<size_t>{1, 3}));
  for (auto& r : campaign.run_points(missing, 1, nullptr))
    results.push_back(std::move(r));
  std::sort(results.begin(), results.end(),
            [](const Campaign::PointResult& a,
               const Campaign::PointResult& b) { return a.index < b.index; });
  EXPECT_EQ(
      Campaign::merge({campaign.to_json(results, 1, 1)}).dump_pretty(),
      want);
}

TEST(Journal, JobsPathStreamsEveryResultThroughTheSink) {
  const Campaign campaign(demo_base());
  size_t streamed = 0;
  const auto results = campaign.run(
      2, nullptr, [&](const Campaign::PointResult&) { ++streamed; });
  EXPECT_EQ(streamed, campaign.points().size());
  EXPECT_EQ(results.size(), campaign.points().size());
}

// ---------------------------------------------------------------------------
// welcome-header replay fixpoint

TEST(Protocol, JournalHeaderReplayIsAFixpoint) {
  const Campaign campaign(demo_base());
  const Json header = campaign.journal_header();
  Configuration replay;
  for (const auto& [k, v] : header.find("config")->members())
    replay.set(k, v.as_string());
  const Campaign rebuilt(std::move(replay));
  // The worker-side proof: the rebuild reproduces the header exactly...
  EXPECT_NO_THROW(rebuilt.check_journal_header(header));
  // ...and therefore the very same points and seeds.
  ASSERT_EQ(rebuilt.points().size(), campaign.points().size());
  for (size_t i = 0; i < campaign.points().size(); ++i) {
    EXPECT_EQ(rebuilt.points()[i].seed, campaign.points()[i].seed);
    EXPECT_EQ(rebuilt.points()[i].coords, campaign.points()[i].coords);
  }
}

// ---------------------------------------------------------------------------
// socket end-to-end (one in-process worker thread: the obs installation
// is process-global, so in-process tests keep one Experiment at a time;
// multi-worker coverage is the fork-based dist_* CTest fixtures)

void run_end_to_end(const std::string& listen) {
  const Campaign campaign(demo_base());
  const std::string want = serial_doc(campaign);
  TempPath tp("test_dist_e2e");

  CoordinatorOptions opts;
  opts.listen = listen;
  opts.lease_batch = 3;
  opts.lease_ms = 30000;
  opts.heartbeat_ms = 50;
  opts.journal_path = tp.path;
  Coordinator coord(campaign, {}, opts);

  int worker_rc = -1;
  std::thread worker([&] {
    WorkerOptions wo;
    wo.name = "thread-1";
    worker_rc = run_worker(coord.address(), wo);
  });
  const auto results = coord.run();
  worker.join();

  EXPECT_EQ(worker_rc, 0);
  EXPECT_EQ(
      Campaign::merge({campaign.to_json(results, 1, 1)}).dump_pretty(),
      want);
  const SchedulerCounters& c = coord.counters();
  EXPECT_EQ(c.dispatched, campaign.points().size());
  EXPECT_EQ(c.completed, campaign.points().size());
  EXPECT_EQ(c.reissued, 0u);
  EXPECT_EQ(c.duplicates, 0u);
  // The journal the coordinator kept replays to the same done-set.
  EXPECT_EQ(campaign.load_journal(tp.path).size(),
            campaign.points().size());

  // The scheduler report carries the counters in its obs block.
  const Json rep = coord.report().to_json();
  EXPECT_TRUE(api::validate_report_json(rep).empty());
  const Json* counters = rep.find("obs")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("dist.points_completed")->as_uint64(),
            campaign.points().size());
}

TEST(DistEndToEnd, UnixSocketRunIsByteIdenticalToSerial) {
  run_end_to_end("unix:.test_dist_" + std::to_string(getpid()) + ".sock");
}

TEST(DistEndToEnd, TcpEphemeralPortRunIsByteIdenticalToSerial) {
  run_end_to_end("tcp:127.0.0.1:0");
}

TEST(DistEndToEnd, ResumeDispatchesOnlyMissingPoints) {
  const Campaign campaign(demo_base());
  const std::string want = serial_doc(campaign);
  const auto all = campaign.run_shard(1, 1, nullptr);
  TempPath tp("test_dist_e2e_resume");
  {
    api::JournalWriter jw(tp.path, campaign.journal_header(), true);
    jw.append(campaign.point_json(all[1]));
    jw.append(campaign.point_json(all[3]));
  }
  CoordinatorOptions opts;
  opts.listen = "unix:.test_dist_r" + std::to_string(getpid()) + ".sock";
  opts.journal_path = tp.path;
  opts.resume = true;
  Coordinator coord(campaign, campaign.load_journal(tp.path), opts);
  std::thread worker([&] { run_worker(coord.address(), {}); });
  const auto results = coord.run();
  worker.join();
  EXPECT_EQ(coord.counters().completed, 2u);   // only the missing two ran
  EXPECT_EQ(coord.counters().dispatched, 2u);
  EXPECT_EQ(
      Campaign::merge({campaign.to_json(results, 1, 1)}).dump_pretty(),
      want);
  EXPECT_EQ(campaign.load_journal(tp.path).size(), 4u);
}

}  // namespace
}  // namespace mcc::dist
