// Dynamic faults — the paper's future-work scenario ("all the faulty
// components can occur during the routing process"), served compositionally
// by the library: when a fault appears mid-route, the prefix already
// travelled is still minimal, so re-running feasibility + routing from the
// current node either completes the minimal path or proves that no minimal
// completion survives the new fault.
#include <gtest/gtest.h>

#include "core/model.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"

namespace mcc::core {
namespace {

using mesh::Coord2;

TEST(DynamicFaults, RerouteAroundFaultAppearingAhead) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  const Coord2 s{0, 0}, d{11, 11};

  // Balanced policy keeps the path interior, so a single strike ahead
  // leaves room to reroute (an x-first path hugs the mesh boundary, where
  // a strike on the final column genuinely kills every minimal completion).
  const MccModel2D before(m, f);
  auto r1 = before.route(s, d, RouterKind::Records, RoutePolicy::Balanced, 1);
  ASSERT_TRUE(r1.delivered);

  // A fault strikes the node three hops ahead of the midpoint.
  const Coord2 mid = r1.path[r1.path.size() / 2];
  const Coord2 hit = r1.path[r1.path.size() / 2 + 3];
  f.set_faulty(hit);

  const MccModel2D after(m, f);
  ASSERT_TRUE(after.feasible(mid, d).feasible);
  const auto r2 =
      after.route(mid, d, RouterKind::Records, RoutePolicy::Balanced, 2);
  ASSERT_TRUE(r2.delivered);
  // The combined journey is still minimal: prefix + re-routed suffix.
  const int prefix = manhattan(s, mid);
  EXPECT_EQ(prefix + r2.hops(), manhattan(s, d));
  for (const Coord2 c : r2.path) EXPECT_FALSE(f.is_faulty(c));
}

TEST(DynamicFaults, DetectsWhenNewFaultKillsAllMinimalCompletions) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  // Corridor: only column 4 crosses row 4.
  for (int x = 0; x < 8; ++x)
    if (x != 4) f.set_faulty({x, 4});
  const Coord2 s{0, 0}, d{7, 7};
  const MccModel2D before(m, f);
  ASSERT_TRUE(before.feasible(s, d).feasible);

  f.set_faulty({4, 4});  // the corridor dies
  const MccModel2D after(m, f);
  EXPECT_FALSE(after.feasible(s, d).feasible);
  // From any prefix position the verdict is the same.
  EXPECT_FALSE(after.feasible({2, 2}, d).feasible);
}

TEST(DynamicFaults, RepeatedStrikesUntilDisconnection) {
  const mesh::Mesh2D m(16, 16);
  util::Rng rng(77);
  mesh::FaultSet2D f(m);
  const Coord2 s{0, 0}, d{15, 15};

  Coord2 at = s;
  int travelled = 0;
  for (int strike = 0; strike < 60; ++strike) {
    const MccModel2D model(m, f);
    const auto feas = model.feasible(at, d);
    const LabelField2D labels(m, f);
    const ReachField2D oracle(m, labels, d, NodeFilter::NonFaulty);
    // The model verdict from the current position always matches truth
    // (safe endpoints; the strike loop keeps at/d alive).
    if (labels.safe(at) && labels.safe(d)) {
      ASSERT_EQ(feas.feasible, oracle.feasible(at)) << "strike " << strike;
    }
    if (!feas.feasible) return;  // disconnected: correctly detected

    const auto r =
        model.route(at, d, RouterKind::Oracle, RoutePolicy::Random, strike);
    ASSERT_TRUE(r.delivered);
    EXPECT_EQ(travelled + r.hops(), manhattan(s, d));

    // Advance two hops along the found path, then a new fault strikes a
    // random healthy non-endpoint node.
    const size_t advance = std::min<size_t>(2, r.path.size() - 1);
    at = r.path[advance];
    travelled += static_cast<int>(advance);
    if (at == d) return;
    for (int tries = 0; tries < 50; ++tries) {
      const Coord2 c = m.coord(rng.pick(m.node_count()));
      if (!f.is_faulty(c) && !(c == at) && !(c == d)) {
        f.set_faulty(c);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace mcc::core
