// Dynamic faults — the paper's future-work scenario ("all the faulty
// components can occur during the routing process"), served by the
// dynamic-fault runtime: a DynamicModel2D absorbs each strike
// incrementally (no rebuild), and re-running feasibility + routing from
// the current node either completes the minimal path or proves that no
// minimal completion survives the new fault. The rebuild-per-event legacy
// path is covered only via the differential suite in test_runtime.cc,
// which proves the incremental stack bit-equivalent to it.
#include <gtest/gtest.h>

#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "runtime/dynamic_model.h"
#include "util/rng.h"

namespace mcc {
namespace {

using core::LabelField2D;
using core::MccModel2D;
using core::ReachField2D;
using mesh::Coord2;
using runtime::DynamicModel2D;

TEST(DynamicFaults, RerouteAroundFaultAppearingAhead) {
  const mesh::Mesh2D m(12, 12);
  const mesh::FaultSet2D f(m);
  const Coord2 s{0, 0}, d{11, 11};

  // Balanced policy keeps the path interior, so a single strike ahead
  // leaves room to reroute (an x-first path hugs the mesh boundary, where
  // a strike on the final column genuinely kills every minimal completion).
  DynamicModel2D model(m, f);
  auto r1 = model.route(s, d, core::RouterKind::Records,
                        core::RoutePolicy::Balanced, 1);
  ASSERT_TRUE(r1.delivered);

  // A fault strikes the node three hops ahead of the midpoint; the model
  // absorbs it in place (epoch bump, no rebuild).
  const Coord2 mid = r1.path[r1.path.size() / 2];
  const Coord2 hit = r1.path[r1.path.size() / 2 + 3];
  const uint64_t epoch_before = model.epoch();
  ASSERT_NE(model.fail(hit).epoch, 0u);
  EXPECT_EQ(model.epoch(), epoch_before + 1);

  ASSERT_TRUE(model.feasible(mid, d).feasible);
  const auto r2 = model.route(mid, d, core::RouterKind::Records,
                              core::RoutePolicy::Balanced, 2);
  ASSERT_TRUE(r2.delivered);
  // The combined journey is still minimal: prefix + re-routed suffix.
  const int prefix = manhattan(s, mid);
  EXPECT_EQ(prefix + r2.hops(), manhattan(s, d));
  for (const Coord2 c : r2.path) EXPECT_FALSE(model.faults().is_faulty(c));
}

TEST(DynamicFaults, DetectsWhenNewFaultKillsAllMinimalCompletions) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  // Corridor: only column 4 crosses row 4.
  for (int x = 0; x < 8; ++x)
    if (x != 4) f.set_faulty({x, 4});
  const Coord2 s{0, 0}, d{7, 7};
  DynamicModel2D model(m, f);
  ASSERT_TRUE(model.feasible(s, d).feasible);

  ASSERT_NE(model.fail({4, 4}).epoch, 0u);  // the corridor dies
  EXPECT_FALSE(model.feasible(s, d).feasible);
  // From any prefix position the verdict is the same.
  EXPECT_FALSE(model.feasible({2, 2}, d).feasible);

  // The repair restores the corridor — and the verdict.
  ASSERT_NE(model.repair({4, 4}).epoch, 0u);
  EXPECT_TRUE(model.feasible(s, d).feasible);
}

TEST(DynamicFaults, RepeatedStrikesUntilDisconnection) {
  const mesh::Mesh2D m(16, 16);
  util::Rng rng(77);
  const mesh::FaultSet2D f(m);
  const Coord2 s{0, 0}, d{15, 15};

  DynamicModel2D model(m, f);
  Coord2 at = s;
  int travelled = 0;
  for (int strike = 0; strike < 60; ++strike) {
    const auto feas = model.feasible(at, d);
    // The canonical (no-flip) octant's labels ARE the labels of the
    // current fault set; the oracle is built over them directly.
    const LabelField2D& labels = model.octant({false, false}).labels;
    const ReachField2D oracle(m, labels, d, core::NodeFilter::NonFaulty);
    // The model verdict from the current position always matches truth
    // (safe endpoints; the strike loop keeps at/d alive).
    if (labels.safe(at) && labels.safe(d)) {
      ASSERT_EQ(feas.feasible, oracle.feasible(at)) << "strike " << strike;
    }
    if (!feas.feasible) return;  // disconnected: correctly detected

    const auto r = model.route(at, d, core::RouterKind::Oracle,
                               core::RoutePolicy::Random, strike);
    ASSERT_TRUE(r.delivered);
    EXPECT_EQ(travelled + r.hops(), manhattan(s, d));

    // Advance two hops along the found path, then a new fault strikes a
    // random healthy non-endpoint node.
    const size_t advance = std::min<size_t>(2, r.path.size() - 1);
    at = r.path[advance];
    travelled += static_cast<int>(advance);
    if (at == d) return;
    for (int tries = 0; tries < 50; ++tries) {
      const Coord2 c = m.coord(rng.pick(m.node_count()));
      if (!model.faults().is_faulty(c) && !(c == at) && !(c == d)) {
        ASSERT_NE(model.fail(c).epoch, 0u);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace mcc
