// E14 fault subsystem: FaultUniverse state, the conservative link->node
// projection (rule + tracker deltas), the stochastic fault processes, the
// wormhole network's link-granular fail/recover (credit conservation and
// thread-count bit-identity), and the reliability driver's determinism.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "fault/process.h"
#include "fault/projection.h"
#include "fault/universe.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/dynamic_routing.h"
#include "sim/wormhole/network.h"
#include "sim/wormhole/routing.h"
#include "util/rng.h"

namespace mcc::fault {
namespace {

using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;

// ---------------------------------------------------------------------------
// FaultUniverse state container

TEST(FaultUniverse, LinkQueriesAreSymmetric) {
  const mesh::Mesh2D m(6, 6);
  FaultUniverse2D u(m);
  u.set_link({2, 3}, Dir2::PosX);
  EXPECT_TRUE(u.link_faulty({2, 3}, Dir2::PosX));
  EXPECT_TRUE(u.link_faulty({3, 3}, Dir2::NegX));
  EXPECT_FALSE(u.link_faulty({2, 3}, Dir2::PosY));
  EXPECT_EQ(u.link_fault_count(), 1);
  // Setting the same channel from the other endpoint is idempotent.
  u.set_link({3, 3}, Dir2::NegX);
  EXPECT_EQ(u.link_fault_count(), 1);
  u.set_link({3, 3}, Dir2::NegX, false);
  EXPECT_FALSE(u.link_faulty({2, 3}, Dir2::PosX));
  EXPECT_EQ(u.link_fault_count(), 0);
}

TEST(FaultUniverse, WallLinksAreNoops) {
  const mesh::Mesh2D m(4, 4);
  FaultUniverse2D u(m);
  u.set_link({3, 0}, Dir2::PosX);  // off the east edge
  u.set_link({0, 0}, Dir2::NegY);  // off the south edge
  EXPECT_EQ(u.link_fault_count(), 0);
  EXPECT_FALSE(u.link_faulty({3, 0}, Dir2::PosX));
}

TEST(FaultUniverse, DeadCoversNodeAndRouterButNotLink) {
  const mesh::Mesh2D m(5, 5);
  FaultUniverse2D u(m);
  u.set_node({1, 1});
  u.set_router({2, 2});
  u.set_link({3, 3}, Dir2::PosY);
  EXPECT_TRUE(u.dead({1, 1}));
  EXPECT_TRUE(u.dead({2, 2}));
  EXPECT_FALSE(u.dead({3, 3}));  // a link fault leaves the node alive
  EXPECT_FALSE(u.dead({3, 4}));
  EXPECT_EQ(u.total_fault_count(), 3);
}

TEST(FaultUniverse, FaultyLinksAreCanonicallyOrdered) {
  const mesh::Mesh3D m(4, 4, 4);
  FaultUniverse3D u(m);
  // Insert from the non-canonical endpoint and out of index order.
  u.set_link({2, 2, 2}, Dir3::NegZ);  // canonical ({2,2,1}, PosZ)
  u.set_link({1, 0, 0}, Dir3::NegX);  // canonical ({0,0,0}, PosX)
  u.set_link({0, 0, 0}, Dir3::PosY);
  const auto links = u.faulty_links();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(m.index(links[0].node), m.index(Coord3{0, 0, 0}));
  EXPECT_EQ(links[0].dir, Dir3::PosX);
  EXPECT_EQ(links[1].dir, Dir3::PosY);
  EXPECT_EQ(m.index(links[2].node), m.index(Coord3{2, 2, 1}));
  EXPECT_EQ(links[2].dir, Dir3::PosZ);
  // Every link id is canonical: positive direction, in-mesh neighbor.
  for (const auto& l : links)
    EXPECT_EQ(static_cast<int>(l.dir) % 2, 0);
}

// ---------------------------------------------------------------------------
// Projection

TEST(Projection, DeadNodesProjectExactly) {
  const mesh::Mesh2D m(6, 6);
  FaultUniverse2D u(m);
  u.set_node({1, 1});
  u.set_router({4, 4});
  const auto p = project(u);
  EXPECT_TRUE(p.faults.is_faulty({1, 1}));
  EXPECT_TRUE(p.faults.is_faulty({4, 4}));
  EXPECT_EQ(p.faults.count(), 2);
  EXPECT_EQ(p.stats.node_faults, 2);
  EXPECT_EQ(p.stats.sacrificed, 0);
}

TEST(Projection, LinkCoveredByDeadEndpointCostsNothing) {
  const mesh::Mesh2D m(6, 6);
  FaultUniverse2D u(m);
  u.set_node({2, 2});
  u.set_link({2, 2}, Dir2::PosX);  // endpoint already dead
  const auto p = project(u);
  EXPECT_EQ(p.faults.count(), 1);
  EXPECT_EQ(p.stats.covered_links, 1);
  EXPECT_EQ(p.stats.sacrificed, 0);
}

TEST(Projection, UncoveredLinkSacrificesCanonicalLowerEndpoint) {
  const mesh::Mesh2D m(6, 6);
  FaultUniverse2D u(m);
  u.set_link({3, 4}, Dir2::PosY);  // between (3,4) and (3,5), both alive
  const auto p = project(u);
  EXPECT_EQ(p.stats.sacrificed, 1);
  EXPECT_TRUE(p.faults.is_faulty({3, 4}));   // the lower endpoint
  EXPECT_FALSE(p.faults.is_faulty({3, 5}));  // the other survives
  // Soundness: once an endpoint of every dead link is projected-faulty,
  // a path through projected-healthy nodes cannot cross a dead link.
  for (const auto& l : u.faulty_links()) {
    const bool covered = p.faults.is_faulty(l.node) ||
                         p.faults.is_faulty(mesh::step(l.node, l.dir));
    EXPECT_TRUE(covered);
  }
}

TEST(Projection, SharedEndpointCoversSecondLinkFree) {
  const mesh::Mesh2D m(6, 6);
  FaultUniverse2D u(m);
  // Both links incident to (2,2); canonical order processes
  // ({2,1},PosY) then ({2,2},PosX) — the first sacrifices (2,1), the
  // second sacrifices (2,2); links sharing a SACRIFICED endpoint ride.
  u.set_link({2, 2}, Dir2::PosX);
  u.set_link({2, 2}, Dir2::NegY);
  const auto p = project(u);
  EXPECT_EQ(p.stats.link_faults, 2);
  EXPECT_EQ(p.stats.covered_links + p.stats.sacrificed, 2);
  for (const auto& l : u.faulty_links()) {
    const bool covered = p.faults.is_faulty(l.node) ||
                         p.faults.is_faulty(mesh::step(l.node, l.dir));
    EXPECT_TRUE(covered);
  }
}

TEST(ProjectionTracker, RefreshEmitsFailAndRepairDeltas) {
  const mesh::Mesh2D m(8, 8);
  FaultUniverse2D u(m);
  ProjectionTracker2D tracker(u);
  u.set_link({4, 4}, Dir2::PosX);
  auto d1 = tracker.refresh();
  ASSERT_EQ(d1.fail.size(), 1u);
  EXPECT_EQ(m.index(d1.fail[0]), m.index(Coord2{4, 4}));
  EXPECT_TRUE(d1.repair.empty());

  u.set_link({4, 4}, Dir2::PosX, false);
  auto d2 = tracker.refresh();
  EXPECT_TRUE(d2.fail.empty());
  ASSERT_EQ(d2.repair.size(), 1u);
  EXPECT_EQ(m.index(d2.repair[0]), m.index(Coord2{4, 4}));

  // No change: refresh is a no-op delta.
  auto d3 = tracker.refresh();
  EXPECT_TRUE(d3.fail.empty());
  EXPECT_TRUE(d3.repair.empty());
}

// ---------------------------------------------------------------------------
// Stochastic processes

TEST(Process, BernoulliUniverseIsSeedDeterministic) {
  const mesh::Mesh3D m(6, 6, 6);
  util::Rng a(99), b(99), c(100);
  const auto ua = make_bernoulli_universe<Axes3>(m, 0.05, 0.02, 0.04, a);
  const auto ub = make_bernoulli_universe<Axes3>(m, 0.05, 0.02, 0.04, b);
  const auto uc = make_bernoulli_universe<Axes3>(m, 0.05, 0.02, 0.04, c);
  EXPECT_EQ(ua.node_fault_count(), ub.node_fault_count());
  EXPECT_EQ(ua.router_fault_count(), ub.router_fault_count());
  EXPECT_EQ(ua.link_fault_count(), ub.link_fault_count());
  const auto la = ua.faulty_links(), lb = ub.faulty_links();
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(m.index(la[i].node), m.index(lb[i].node));
    EXPECT_EQ(la[i].dir, lb[i].dir);
  }
  EXPECT_GT(ua.total_fault_count(), 0);
  EXPECT_NE(uc.total_fault_count(), 0);  // different seed still draws
}

TEST(Process, HardChurnStrikesEveryEnabledClass) {
  const mesh::Mesh2D m(10, 10);
  UniverseChurnParams p;
  p.rate = 0.05;
  p.horizon = 4000;
  p.node_weight = 1;
  p.router_weight = 1;
  p.link_weight = 1;
  util::Rng rng(0xFA17);
  const auto events = sample_hard_churn<Axes2>(m, rng, p);
  ASSERT_FALSE(events.empty());
  int by_class[3] = {0, 0, 0};
  uint64_t prev = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.cycle, prev);
    prev = e.cycle;
    if (!e.repair) ++by_class[static_cast<int>(e.comp)];
    if (e.comp == Component::Link) {
      EXPECT_EQ(static_cast<int>(e.dir) % 2, 0);  // canonical link ids
    }
  }
  EXPECT_GT(by_class[0], 0);
  EXPECT_GT(by_class[1], 0);
  EXPECT_GT(by_class[2], 0);
}

TEST(Process, TransientStrikesOnlySoftClasses) {
  const mesh::Mesh2D m(8, 8);
  UniverseChurnParams p;
  p.mtbf = 20000;  // per component -> busy schedule over 208 soft parts
  p.mttr = 150;
  p.horizon = 5000;
  util::Rng rng(0x50F7);
  const auto events = sample_transient<Axes2>(m, rng, p);
  ASSERT_FALSE(events.empty());
  size_t repairs = 0;
  for (const auto& e : events) {
    EXPECT_NE(e.comp, Component::Node);  // compute crashes are hard-only
    repairs += e.repair;
  }
  EXPECT_GT(repairs, 0u);  // transient faults always recover
}

TEST(Process, CompositeScheduleIsSortedAndApplies) {
  const mesh::Mesh2D m(8, 8);
  UniverseChurnParams p;
  p.rate = 0.01;
  p.horizon = 3000;
  p.link_weight = 1;
  p.mtbf = 30000;
  p.mttr = 200;
  util::Rng rng(7);
  const auto events =
      sample_universe_churn<Axes2>(m, rng, p, /*hard=*/true,
                                   /*transient=*/true);
  ASSERT_FALSE(events.empty());
  FaultUniverse2D u(m);
  uint64_t prev = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.cycle, prev);
    prev = e.cycle;
    apply_event(u, e);
  }
  // A repeat of an already-applied event reports no-op.
  FaultUniverse2D v(m);
  EXPECT_TRUE(apply_event(v, events.front()));
  EXPECT_FALSE(apply_event(v, events.front()));
}

// ---------------------------------------------------------------------------
// Wormhole network link faults

TEST(NetworkLinkFault, CreditsStayConservedAcrossFailAndRepair) {
  const mesh::Mesh2D m(6, 6);
  const mesh::FaultSet2D f(m);
  sim::wh::MccRouting2D routing(m, f, sim::wh::GuidanceMode::Model);
  sim::wh::Config cfg;
  cfg.drop_infeasible = true;
  sim::wh::Network2D net(m, f, routing, cfg, core::RoutePolicy::Balanced, 3);

  util::Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const auto [s, d] = util::random_strict_pair2d(m, rng);
    net.inject(s, d);
  }
  for (int c = 0; c < 40; ++c) net.step();

  std::string err;
  ASSERT_TRUE(net.check_credits(&err)) << err;
  net.fail_link({2, 2}, mesh::Dir2::PosX);
  net.fail_link({3, 3}, mesh::Dir2::NegY);
  EXPECT_TRUE(net.link_failed({2, 2}, mesh::Dir2::PosX));
  EXPECT_TRUE(net.link_failed({3, 2}, mesh::Dir2::NegX));  // symmetric view
  EXPECT_TRUE(net.check_credits(&err)) << err;  // dead-link VCs pristine

  for (int c = 0; c < 200 && !net.idle(); ++c) net.step();
  EXPECT_TRUE(net.check_credits(&err)) << err;

  net.repair_link({2, 2}, mesh::Dir2::PosX);
  EXPECT_FALSE(net.link_failed({2, 2}, mesh::Dir2::PosX));
  EXPECT_TRUE(net.check_credits(&err)) << err;
  for (int i = 0; i < 10; ++i) {
    const auto [s, d] = util::random_strict_pair2d(m, rng);
    net.inject(s, d);
  }
  for (int c = 0; c < 3000 && !net.idle(); ++c) net.step();
  EXPECT_TRUE(net.idle());
  EXPECT_TRUE(net.check_credits(&err)) << err;
  for (const std::string& v : net.stats().violations) ADD_FAILURE() << v;
  EXPECT_EQ(net.stats().link_fault_events, 2u);
  EXPECT_EQ(net.stats().link_repair_events, 1u);
}

TEST(NetworkLinkFault, TrafficRoutesAroundSeveredLink) {
  const mesh::Mesh2D m(6, 6);
  const mesh::FaultSet2D f(m);
  sim::wh::MccRouting2D routing(m, f, sim::wh::GuidanceMode::Model);
  sim::wh::Config cfg;
  cfg.drop_infeasible = true;
  sim::wh::Network2D net(m, f, routing, cfg, core::RoutePolicy::Balanced, 5);
  // Sever the only minimal first hop of a straight-line pair: (0,0)->(5,0)
  // must leave +X, so cutting ((0,0),PosX) forces a drop; an L-shaped pair
  // still has the +Y detour inside its minimal quadrant.
  net.fail_link({0, 0}, mesh::Dir2::PosX);
  net.inject({0, 0}, {5, 0});  // physically severed from every minimal path
  net.inject({0, 0}, {5, 5});  // adaptive: leaves via +Y instead
  for (int c = 0; c < 4000 && !net.idle(); ++c) net.step();
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.stats().delivered_packets, 1u);
  EXPECT_EQ(net.stats().dropped_packets, 1u);
  for (const std::string& v : net.stats().violations) ADD_FAILURE() << v;
}

TEST(NetworkLinkFault, LinkLoadPointBitIdenticalAcrossThreads) {
  const mesh::Mesh2D m(8, 8);
  util::Rng urng(0xE14);
  const auto universe =
      make_bernoulli_universe<Axes2>(m, 0.02, 0.01, 0.05, urng);
  const auto proj = project(universe);
  sim::wh::LoadPoint load;
  load.rate = 0.02;
  load.warmup = 100;
  load.measure = 300;
  load.drain = 10000;

  std::vector<sim::wh::LinkEnvResult> results;
  for (const int threads : {1, 2, 3, 4}) {
    sim::wh::MccRouting2D routing(m, proj.faults,
                                  sim::wh::GuidanceMode::Model);
    sim::wh::Config cfg;
    cfg.threads = threads;
    results.push_back(sim::wh::run_link_load_point2d(
        universe, proj.faults, routing, sim::wh::Pattern::Uniform, cfg,
        core::RoutePolicy::Balanced, load, 0xBEEF));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].sim.delivered_packets,
              results[i].sim.delivered_packets);
    EXPECT_EQ(results[0].sim.offered_flits, results[i].sim.offered_flits);
    EXPECT_EQ(results[0].sim.accepted_flits, results[i].sim.accepted_flits);
    EXPECT_EQ(results[0].sim.avg_latency, results[i].sim.avg_latency);
    EXPECT_EQ(results[0].sim.p99_latency, results[i].sim.p99_latency);
    EXPECT_EQ(results[0].sim.max_latency, results[i].sim.max_latency);
    EXPECT_EQ(results[0].sim.filtered, results[i].sim.filtered);
    EXPECT_EQ(results[0].link_faults, results[i].link_faults);
    EXPECT_EQ(results[0].sacrificed, results[i].sacrificed);
    EXPECT_EQ(results[i].sim.violations, 0u);
    EXPECT_FALSE(results[i].sim.deadlocked);
  }
  EXPECT_GT(results[0].link_faults, 0u);
}

TEST(NetworkLinkFault, UniverseChurnBitIdenticalAcrossThreads) {
  const mesh::Mesh2D m(8, 8);
  sim::wh::LoadPoint load;
  load.rate = 0.02;
  load.warmup = 100;
  load.measure = 400;
  load.drain = 12000;
  UniverseChurnParams p;
  p.rate = 0.004;
  p.horizon = 500;
  p.link_weight = 1;
  p.router_weight = 1;
  p.repair_min = 80;
  p.repair_max = 200;
  p.mtbf = 30000;
  p.mttr = 150;

  std::vector<sim::wh::UniverseChurnResult> results;
  for (const int threads : {1, 2, 4}) {
    util::Rng rng(0xD1CE);
    auto universe = make_bernoulli_universe<Axes2>(m, 0.02, 0.0, 0.03, rng);
    auto events = sample_universe_churn<Axes2>(m, rng, p, true, true);
    runtime::DynamicModel2D model(m, project(universe).faults);
    sim::wh::DynamicMccRouting2D routing(model);
    sim::wh::Config cfg;
    cfg.threads = threads;
    results.push_back(sim::wh::run_universe_churn_load_point2d(
        model, routing, sim::wh::Pattern::Uniform, cfg,
        core::RoutePolicy::Balanced, load, std::move(universe),
        std::move(events), 0xFEED));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].sim.delivered_packets,
              results[i].sim.delivered_packets);
    EXPECT_EQ(results[0].sim.accepted_flits, results[i].sim.accepted_flits);
    EXPECT_EQ(results[0].sim.avg_latency, results[i].sim.avg_latency);
    EXPECT_EQ(results[0].fault_events, results[i].fault_events);
    EXPECT_EQ(results[0].repair_events, results[i].repair_events);
    EXPECT_EQ(results[0].link_fault_events, results[i].link_fault_events);
    EXPECT_EQ(results[0].link_repair_events,
              results[i].link_repair_events);
    EXPECT_EQ(results[0].dropped_packets, results[i].dropped_packets);
    EXPECT_EQ(results[0].projection_sacrifices,
              results[i].projection_sacrifices);
    EXPECT_EQ(results[i].sim.violations, 0u);
    EXPECT_FALSE(results[i].sim.deadlocked);
  }
  EXPECT_TRUE(results[0].sim.drained);
  EXPECT_GT(results[0].link_fault_events +
                results[0].fault_events,
            0u);
}

// ---------------------------------------------------------------------------
// The reliability driver end to end

api::Configuration reliability_cfg(const std::string& extra = "") {
  api::Configuration cfg;
  cfg.load_text(
      "driver = reliability\nname = t\ndims = 2\nk = 10\n"
      "fault_model = link\nfault_pattern = uniform\nfault_rate = 0.03\n"
      "link_fault_rate = 0.05\npolicy = model\ntrials = 6\npairs = 12\n"
      "seed = 0xE14\n" + extra,
      "test");
  return cfg;
}

TEST(ReliabilityDriver, RendersByteIdenticallyAcrossRuns) {
  auto render = [] {
    api::RunReport r = api::Experiment(reliability_cfg()).run();
    std::ostringstream os;
    r.render(os);
    return os.str();
  };
  const std::string a = render(), b = render();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("reachable"), std::string::npos);
  EXPECT_NE(a.find("model gap"), std::string::npos);
}

TEST(ReliabilityDriver, RequiresUniverseFaultModel) {
  api::Configuration cfg = reliability_cfg("fault_model = static\n");
  api::Experiment exp(std::move(cfg));
  EXPECT_THROW(exp.run(), api::ConfigError);
}

TEST(ReliabilityDriver, TransientModelRuns) {
  api::Configuration cfg = reliability_cfg(
      "fault_model = composite\nfault_pattern = uniform_links\n"
      "churn = 3\nchurn_horizon = 1000\nmtbf = 40000\nmttr = 200\n");
  api::RunReport r = api::Experiment(std::move(cfg)).run();
  EXPECT_FALSE(r.failed());
}

}  // namespace
}  // namespace mcc::fault
