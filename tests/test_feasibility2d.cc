// 2-D feasibility: the paper's detection walkers (Algorithm 3 phase 1) and
// the static conditions, cross-validated against the reachability oracle.
// The central claim under test: for safe endpoints with strict offsets,
//     detect2d == safe-DAG oracle == non-faulty oracle,
// lemma1_blocked is sound (never blocks a feasible pair), and the public
// decision procedure handles every degenerate case.
#include <gtest/gtest.h>

#include "core/feasibility2d.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::core {
namespace {

using mesh::Coord2;

struct Fixture2D {
  mesh::Mesh2D m;
  mesh::FaultSet2D f;
  LabelField2D l;
  MccSet2D mccs;

  Fixture2D(int size, double rate, uint64_t seed,
            std::vector<Coord2> protect = {})
      : m(size, size),
        f([&] {
          util::Rng rng(seed);
          return mesh::inject_uniform(m, rate, rng, protect);
        }()),
        l(m, f),
        mccs(m, l) {}
};

TEST(Detect2D, FaultFreeAlwaysFeasible) {
  const Fixture2D fx(10, 0.0, 1);
  for (int x = 1; x < 10; ++x)
    for (int y = 1; y < 10; ++y)
      EXPECT_TRUE(detect2d(fx.m, fx.l, {0, 0}, {x, y}).feasible());
}

TEST(Detect2D, WallAcrossRectangleBlocks) {
  // A full-width horizontal wall inside the rectangle kills feasibility.
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  mesh::add_wall_y(f, m, 0, 9, 5);
  const LabelField2D l(m, f);
  EXPECT_FALSE(detect2d(m, l, {0, 0}, {9, 9}).feasible());
  // Below the wall everything still works.
  EXPECT_TRUE(detect2d(m, l, {0, 0}, {9, 4}).feasible());
}

TEST(Detect2D, WallWithGapIsPassable) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  mesh::add_wall_y(f, m, 0, 8, 5);  // gap at x = 9
  const LabelField2D l(m, f);
  EXPECT_TRUE(detect2d(m, l, {0, 0}, {9, 9}).feasible());
  // But a destination west of the gap, above the wall, is unreachable:
  // passing the gap overshoots x.
  EXPECT_FALSE(detect2d(m, l, {0, 0}, {5, 9}).feasible());
}

TEST(Detect2D, SingleBlockDetour) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int y = 4; y <= 6; ++y)
    for (int x = 4; x <= 6; ++x) f.set_faulty({x, y});
  const LabelField2D l(m, f);
  EXPECT_TRUE(detect2d(m, l, {0, 0}, {11, 11}).feasible());
  EXPECT_TRUE(detect2d(m, l, {0, 0}, {5, 11}).feasible());  // over the block
  EXPECT_TRUE(detect2d(m, l, {0, 0}, {11, 5}).feasible());  // under it
  // From inside the forbidden shadow to above the block: blocked.
  EXPECT_FALSE(detect2d(m, l, {5, 0}, {5, 11}).feasible());
}

TEST(Lemma1, WitnessesSimpleTrap) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int x = 3; x <= 8; ++x) f.set_faulty({x, 5});
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  // s below the bar inside its shadow, d right above it.
  const auto res = lemma1_blocked(mccs, {5, 2}, {6, 9});
  EXPECT_TRUE(res.blocked);
  EXPECT_EQ(res.axis, 'Y');
  // s west of the bar: free.
  EXPECT_FALSE(lemma1_blocked(mccs, {0, 2}, {6, 9}).blocked);
}

TEST(Lemma1, MultiRegionTrapNeedsChains) {
  // The canonical counterexample documented in core/boundary2d.h: B below
  // and west of M; a source under B with destination above M is blocked,
  // but no single region witnesses it.
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int x = 2; x <= 4; ++x)
    for (int y = 2; y <= 3; ++y) f.set_faulty({x, y});  // B
  for (int x = 5; x <= 8; ++x)
    for (int y = 5; y <= 8; ++y) f.set_faulty({x, y});  // M
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 2u);

  const Coord2 s{3, 1}, d{6, 10};
  // Truth: blocked.
  const ReachField2D oracle(m, l, d, NodeFilter::NonFaulty);
  EXPECT_FALSE(oracle.feasible(s));
  // Walkers agree.
  EXPECT_FALSE(detect2d(m, l, s, d).feasible());
  // Single-region Lemma 1 misses it.
  EXPECT_FALSE(lemma1_blocked(mccs, s, d).blocked);
}

using util::SweepParam;

class FeasibilitySweep2D : public ::testing::TestWithParam<SweepParam> {};

// The headline equivalence: walkers == oracle for safe strict pairs.
TEST_P(FeasibilitySweep2D, DetectMatchesOracle) {
  const auto [size, rate, seed, pairs] = GetParam();
  const Fixture2D fx(size, rate, seed);
  util::Rng rng(seed * 31 + 1);

  int checked = 0;
  for (int t = 0; t < pairs * 20 && checked < pairs; ++t) {
    const auto [s, d] = util::random_strict_pair2d(fx.m, rng);
    if (!fx.l.safe(s) || !fx.l.safe(d)) continue;
    ++checked;
    const ReachField2D oracle(fx.m, fx.l, d, NodeFilter::NonFaulty);
    const bool truth = oracle.feasible(s);
    EXPECT_EQ(detect2d(fx.m, fx.l, s, d).feasible(), truth)
        << "s=" << s << " d=" << d << " seed=" << seed;
    // Lemma 1 soundness: a blocked verdict is always correct.
    if (lemma1_blocked(fx.mccs, s, d).blocked) {
      EXPECT_FALSE(truth);
    }
    // The public API agrees with the oracle too.
    EXPECT_EQ(mcc_feasible2d(fx.m, fx.l, s, d).feasible, truth);
  }
  // At extreme fault rates most endpoints are unsafe and get skipped.
  if (rate <= 0.25) {
    EXPECT_GT(checked, pairs / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, FeasibilitySweep2D,
    ::testing::Values(SweepParam{10, 0.10, 51, 60},
                      SweepParam{12, 0.15, 52, 60},
                      SweepParam{16, 0.10, 53, 60},
                      SweepParam{16, 0.20, 54, 60},
                      SweepParam{16, 0.30, 55, 60},
                      SweepParam{24, 0.15, 56, 40},
                      SweepParam{24, 0.25, 57, 40},
                      SweepParam{32, 0.10, 58, 30},
                      SweepParam{32, 0.20, 59, 30},
                      SweepParam{32, 0.35, 60, 30}));

class FeasibilityClustered2D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FeasibilityClustered2D, DetectMatchesOracleOnClusters) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const int count = static_cast<int>(rate * size * size);
  const auto f = mesh::inject_clustered(m, count, 3, rng);
  const LabelField2D l(m, f);
  util::Rng prng(seed * 77 + 3);

  int checked = 0;
  for (int t = 0; t < pairs * 20 && checked < pairs; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    ++checked;
    const ReachField2D oracle(m, l, d, NodeFilter::NonFaulty);
    EXPECT_EQ(detect2d(m, l, s, d).feasible(), oracle.feasible(s))
        << "s=" << s << " d=" << d << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, FeasibilityClustered2D,
    ::testing::Values(SweepParam{16, 0.15, 61, 50},
                      SweepParam{16, 0.30, 62, 50},
                      SweepParam{24, 0.20, 63, 40},
                      SweepParam{32, 0.25, 64, 30}));

TEST(McFeasible2D, DegenerateCases) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  f.set_faulty({0, 5});
  f.set_faulty({5, 0});
  f.set_faulty({9, 9});
  const LabelField2D l(m, f);

  // Same node.
  EXPECT_TRUE(mcc_feasible2d(m, l, {3, 3}, {3, 3}).feasible);
  EXPECT_EQ(mcc_feasible2d(m, l, {3, 3}, {3, 3}).basis,
            FeasibilityBasis::TrivialSame);
  EXPECT_FALSE(mcc_feasible2d(m, l, {9, 9}, {9, 9}).feasible);

  // Faulty endpoints.
  EXPECT_FALSE(mcc_feasible2d(m, l, {0, 5}, {8, 8}).feasible);
  EXPECT_FALSE(mcc_feasible2d(m, l, {1, 1}, {9, 9}).feasible);
  EXPECT_EQ(mcc_feasible2d(m, l, {1, 1}, {9, 9}).basis,
            FeasibilityBasis::DeadEndpoint);

  // Straight lines: the column x=0 is cut at (0,5); the row y=0 at (5,0).
  EXPECT_FALSE(mcc_feasible2d(m, l, {0, 0}, {0, 9}).feasible);
  EXPECT_TRUE(mcc_feasible2d(m, l, {0, 0}, {0, 4}).feasible);
  EXPECT_FALSE(mcc_feasible2d(m, l, {0, 0}, {9, 0}).feasible);
  EXPECT_TRUE(mcc_feasible2d(m, l, {6, 0}, {9, 0}).feasible);
  EXPECT_EQ(mcc_feasible2d(m, l, {0, 0}, {0, 4}).basis,
            FeasibilityBasis::DegenerateLine);
}

TEST(McFeasible2D, StraightLineThroughUnsafeHealthyNodesIsFeasible) {
  // Column of useless-but-healthy nodes: a pure +Y route through them is a
  // legitimate minimal path (the model's labels only constrain strict
  // 2-D routing).
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  // Make column 6 nodes useless by walling east and staggering faults.
  for (int y = 2; y <= 6; ++y) f.set_faulty({7, y});
  f.set_faulty({6, 7});
  const LabelField2D l(m, f);
  ASSERT_EQ(l.state({6, 6}), NodeState::Useless);
  ASSERT_EQ(l.state({6, 5}), NodeState::Useless);
  EXPECT_TRUE(mcc_feasible2d(m, l, {6, 0}, {6, 6}).feasible);
}

TEST(McFeasible2D, UnsafeEndpointFallsBackToOracle) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({1, 2});
  f.set_faulty({2, 1});
  const LabelField2D l(m, f);
  ASSERT_EQ(l.state({1, 1}), NodeState::Useless);
  const auto res = mcc_feasible2d(m, l, {1, 1}, {7, 7});
  EXPECT_EQ(res.basis, FeasibilityBasis::OracleFallback);
  EXPECT_FALSE(res.feasible);  // both escapes from (1,1) are faulty
  // A can't-reach destination with its healthy diagonal sibling.
  const auto res2 = mcc_feasible2d(m, l, {0, 0}, {2, 2});
  EXPECT_EQ(res2.basis, FeasibilityBasis::OracleFallback);
  EXPECT_FALSE(res2.feasible);
}

}  // namespace
}  // namespace mcc::core
