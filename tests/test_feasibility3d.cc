// 3-D feasibility: Algorithm 6's three surface floods against the oracle,
// including the adversarial configurations (plates, shells, slabs) that
// motivated the paper's cyclic surface/target pairing.
#include <gtest/gtest.h>

#include "core/feasibility3d.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::core {
namespace {

using mesh::Coord3;

TEST(Detect3D, FaultFreeFeasible) {
  const mesh::Mesh3D m(6, 6, 6);
  const LabelField3D l(m, mesh::FaultSet3D(m));
  const auto r = detect3d(m, l, {0, 0, 0}, {5, 5, 5});
  EXPECT_TRUE(r.x_surface_ok);
  EXPECT_TRUE(r.y_surface_ok);
  EXPECT_TRUE(r.z_surface_ok);
}

TEST(Detect3D, FullPlateBlocks) {
  // A plate spanning the whole box cross-section: no minimal path, and the
  // floods must say so (this is the configuration where naive "reach the
  // matching surface" checks fail; the paper's cyclic pairing catches it).
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 0, 6, 0, 6, 3);
  const LabelField3D l(m, f);
  const Coord3 s{0, 0, 0}, d{6, 6, 6};
  const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
  ASSERT_FALSE(oracle.feasible(s));
  EXPECT_FALSE(detect3d(m, l, s, d).feasible());
}

TEST(Detect3D, PlateWithCornerEscapeIsFeasible) {
  // Same plate but one column of the box cross-section left open.
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 1, 6, 0, 6, 3);  // x = 0 column open
  const LabelField3D l(m, f);
  const Coord3 s{0, 0, 0}, d{6, 6, 6};
  const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
  ASSERT_TRUE(oracle.feasible(s));
  EXPECT_TRUE(detect3d(m, l, s, d).feasible());
}

TEST(Detect3D, PlateHoleMustBeNorthwestReachable) {
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 0, 7, 0, 7, 3);
  f.set_faulty({4, 4, 3}, false);  // single hole
  const LabelField3D l(m, f);
  // d directly above-and-beyond the hole: feasible.
  {
    const Coord3 s{0, 0, 0}, d{7, 7, 7};
    const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
    ASSERT_TRUE(oracle.feasible(s));
    EXPECT_TRUE(detect3d(m, l, s, d).feasible());
  }
  // d above but south-west of the hole: the hole overshoots x/y.
  {
    const Coord3 s{0, 0, 0}, d{3, 3, 7};
    const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
    ASSERT_FALSE(oracle.feasible(s));
    EXPECT_FALSE(detect3d(m, l, s, d).feasible());
  }
}

TEST(Detect3D, TwoStaggeredPlates) {
  // Two half-plates at different heights whose union covers the cross
  // section: passable only through the overlap ordering.
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 0, 3, 0, 7, 2);   // west half at z=2
  mesh::add_plate_z(f, m, 3, 7, 0, 7, 5);   // east half at z=5 (overlap x=3)
  const LabelField3D l(m, f);
  const Coord3 s{0, 0, 0}, d{7, 7, 7};
  const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
  // Passable: go east at low z (under the west plate needs x>=4 ... the
  // east strip), climb between plates? Let the oracle decide and require
  // agreement.
  EXPECT_EQ(detect3d(m, l, s, d).feasible(), oracle.feasible(s));
}

using util::SweepParam;

class FeasibilitySweep3D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FeasibilitySweep3D, DetectMatchesOracle) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField3D l(m, f);
  util::Rng prng(seed * 13 + 5);

  int checked = 0;
  for (int t = 0; t < pairs * 20 && checked < pairs; ++t) {
    const auto [s, d] = util::random_strict_pair3d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    ++checked;
    const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
    EXPECT_EQ(detect3d(m, l, s, d).feasible(), oracle.feasible(s))
        << "s=" << s << " d=" << d << " seed=" << seed;
  }
  // At extreme fault rates most endpoints are unsafe and get skipped.
  if (rate <= 0.25) {
    EXPECT_GT(checked, pairs / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, FeasibilitySweep3D,
    ::testing::Values(SweepParam{6, 0.10, 71, 60},
                      SweepParam{6, 0.25, 72, 60},
                      SweepParam{8, 0.10, 73, 50},
                      SweepParam{8, 0.20, 74, 50},
                      SweepParam{8, 0.35, 75, 50},
                      SweepParam{10, 0.15, 76, 40},
                      SweepParam{10, 0.30, 77, 40},
                      SweepParam{12, 0.10, 78, 30},
                      SweepParam{12, 0.25, 79, 30}));

class FeasibilityClustered3D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FeasibilityClustered3D, DetectMatchesOracleOnClusters) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const int count = static_cast<int>(rate * size * size * size);
  const auto f = mesh::inject_clustered(m, count, 4, rng);
  const LabelField3D l(m, f);
  util::Rng prng(seed * 7 + 11);

  int checked = 0;
  for (int t = 0; t < pairs * 20 && checked < pairs; ++t) {
    const auto [s, d] = util::random_strict_pair3d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    ++checked;
    const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
    EXPECT_EQ(detect3d(m, l, s, d).feasible(), oracle.feasible(s))
        << "s=" << s << " d=" << d << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, FeasibilityClustered3D,
    ::testing::Values(SweepParam{8, 0.15, 81, 50},
                      SweepParam{8, 0.30, 82, 50},
                      SweepParam{10, 0.20, 83, 40},
                      SweepParam{12, 0.15, 84, 30}));

TEST(McFeasible3D, DegenerateReductions) {
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  f.set_faulty({0, 0, 4});                  // cuts the z line from origin
  mesh::add_plate_z(f, m, 0, 7, 0, 7, 6);   // plate above z=6
  f.set_faulty({4, 4, 6}, false);           // hole at (4,4)
  const LabelField3D l(m, f);

  // Doubly degenerate: straight line.
  EXPECT_FALSE(mcc_feasible3d(m, f, l, {0, 0, 0}, {0, 0, 7}).feasible);
  EXPECT_TRUE(mcc_feasible3d(m, f, l, {0, 0, 0}, {0, 0, 3}).feasible);
  EXPECT_TRUE(mcc_feasible3d(m, f, l, {0, 0, 0}, {7, 0, 0}).feasible);

  // Singly degenerate: plane slice. Within the plane z... routing in the
  // XY plane z=0 is free.
  EXPECT_TRUE(mcc_feasible3d(m, f, l, {0, 0, 0}, {7, 7, 0}).feasible);
  // Confined to the plane x=4: must pass the plate's hole column — the
  // slice has a wall at z=6 except y=4.
  EXPECT_TRUE(mcc_feasible3d(m, f, l, {4, 0, 0}, {4, 4, 7}).feasible);
  EXPECT_FALSE(mcc_feasible3d(m, f, l, {4, 0, 0}, {4, 3, 7}).feasible);

  // Trivial and dead endpoints.
  EXPECT_TRUE(mcc_feasible3d(m, f, l, {1, 1, 1}, {1, 1, 1}).feasible);
  EXPECT_FALSE(mcc_feasible3d(m, f, l, {0, 0, 4}, {5, 5, 5}).feasible);
}

TEST(McFeasible3D, MatchesOracleOnMixedPatterns) {
  const mesh::Mesh3D m(9, 9, 9);
  mesh::FaultSet3D f(m);
  mesh::add_plate_x(f, m, 4, 1, 7, 1, 7);
  util::Rng rng(90);
  for (int t = 0; t < 30; ++t) {
    const Coord3 c{rng.uniform_int(0, 8), rng.uniform_int(0, 8),
                   rng.uniform_int(0, 8)};
    f.set_faulty(c);
  }
  const LabelField3D l(m, f);
  util::Rng prng(91);
  for (int t = 0; t < 200; ++t) {
    const auto [s, d] = util::random_strict_pair3d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    const ReachField3D oracle(m, l, d, NodeFilter::NonFaulty);
    EXPECT_EQ(mcc_feasible3d(m, f, l, s, d).feasible, oracle.feasible(s))
        << "s=" << s << " d=" << d;
  }
}

}  // namespace
}  // namespace mcc::core
