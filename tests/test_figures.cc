// Scenario reproductions of every figure in the paper. The figures are
// conceptual diagrams; each test re-creates the drawn configuration and
// asserts the behavior the figure illustrates.
#include <gtest/gtest.h>

#include "baselines/fault_block.h"
#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/model.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Coord3;

// Figure 1(a): definitions of useless and can't-reach nodes. A staircase of
// faults descending to the east; entering the staircase's inner elbows
// forces backward moves.
TEST(Figure1, UselessAndCantReachDefinitions) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  // Descending staircase of faults.
  f.set_faulty({2, 7});
  f.set_faulty({3, 6});
  f.set_faulty({4, 5});
  f.set_faulty({5, 4});
  const LabelField2D l(m, f);
  // Every inner SW elbow of the descending chain becomes useless...
  EXPECT_EQ(l.state({2, 6}), NodeState::Useless);
  EXPECT_EQ(l.state({3, 5}), NodeState::Useless);
  EXPECT_EQ(l.state({4, 4}), NodeState::Useless);
  // ...and every inner NE elbow can't-reach.
  EXPECT_EQ(l.state({3, 7}), NodeState::CantReach);
  EXPECT_EQ(l.state({4, 6}), NodeState::CantReach);
  EXPECT_EQ(l.state({5, 5}), NodeState::CantReach);
}

// Figure 1(b) vs (c): the rectangular faulty block swallows far more
// healthy nodes than the MCCs it decomposes into.
TEST(Figure1, MccSmallerThanRectangularBlock) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  // An ascending staircase: for the (+X,+Y) quadrant every diagonal gap is
  // passable, so the MCC model absorbs NOTHING — while the rectangular
  // block swallows the whole 4x4 box. (A descending staircase would fill
  // completely under both models; the MCC advantage is exactly its
  // orientation awareness.)
  for (const Coord2 c :
       {Coord2{2, 2}, Coord2{3, 3}, Coord2{4, 4}, Coord2{5, 5}})
    f.set_faulty(c);
  const LabelField2D l(m, f);
  const auto bbox = baselines::bounding_box_fill(m, f);
  const auto safety = baselines::safety_fill(m, f);
  EXPECT_EQ(l.healthy_unsafe_count(), 0);
  EXPECT_EQ(bbox.healthy_unsafe_count(), 12);
  EXPECT_LT(l.healthy_unsafe_count(), bbox.healthy_unsafe_count());
  EXPECT_LE(l.healthy_unsafe_count(), safety.healthy_unsafe_count());
}

// Figure 2: the identification process walks the region contour; the
// centralized equivalent is region extraction — the initialization corner
// and opposite corner exist and are where the figure puts them.
TEST(Figure2, IdentificationCorners) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  // Ascending staircase region (stable for the (+,+) quadrant).
  for (const Coord2 c : {Coord2{4, 4}, Coord2{5, 4}, Coord2{5, 5},
                         Coord2{6, 5}, Coord2{6, 6}})
    f.set_faulty(c);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 1u);
  const MccRegion2D& r = mccs.regions()[0];
  EXPECT_EQ(r.healthy_cells, 0);  // stable staircase: no fill
  // Initialization corner = SW nose, diagonally outside the region.
  EXPECT_EQ(r.corner(), (Coord2{3, 3}));
  // The "opposite corner" of the identification walk is the NE nose.
  EXPECT_EQ(r.x1, 6);
  EXPECT_EQ(r.y1, 6);
}

// Figure 3: boundary construction with a second MCC on the boundary line;
// the forbidden regions merge.
TEST(Figure3, BoundaryMergesAcrossSecondMcc) {
  const mesh::Mesh2D m(14, 14);
  mesh::FaultSet2D f(m);
  for (int x = 6; x <= 9; ++x)
    for (int y = 7; y <= 9; ++y) f.set_faulty({x, y});  // M(c)
  for (int x = 3; x <= 6; ++x)
    for (int y = 3; y <= 4; ++y) f.set_faulty({x, y});  // M(v), straddles
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  const Boundary2D b(m, l, mccs);
  const int mc = mccs.region_at({6, 7});
  const int mv = mccs.region_at({3, 3});
  ASSERT_NE(mc, mv);
  const Wall2D& yw = b.y_wall(mc);
  ASSERT_TRUE(yw.exists);
  EXPECT_EQ(yw.chain.size(), 2u);
  EXPECT_EQ(yw.chain[1], mv);
  // Records from M(c) appear below M(v)'s corner.
  bool found = false;
  for (const Record2D& rec : b.records_at({2, 1}))
    found |= rec.owner == mc;
  EXPECT_TRUE(found);
}

// Figure 4(a): feasibility check that returns NO — destination tucked
// above a bar whose boundary cannot be crossed within the rectangle.
TEST(Figure4, FeasibilityCheckNoAndYes) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int x = 2; x <= 9; ++x) f.set_faulty({x, 5});
  const LabelField2D l(m, f);
  // (a) d in the bar's shadow: NO.
  EXPECT_FALSE(detect2d(m, l, {4, 0}, {8, 9}).feasible());
  // (b) source west of the bar: YES.
  EXPECT_TRUE(detect2d(m, l, {0, 0}, {8, 9}).feasible());
  // (c) the routing then constructs a minimal path.
  const MccSet2D mccs(m, l);
  const Boundary2D b(m, l, mccs);
  const RecordGuidance2D g(l, mccs, b, {8, 9});
  util::Rng rng(7);
  const auto r = route2d(m, {0, 0}, {8, 9}, g, RoutePolicy::XFirst, rng);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 17);
}

// Figure 5: the 3-D example with exact coordinates (also covered in the
// labelling/region tests); here: the RFB block vs the two MCCs.
TEST(Figure5, RfbVersusMcc) {
  const mesh::Mesh3D m(10, 10, 10);
  mesh::FaultSet3D f(m);
  for (const Coord3 c : {Coord3{5, 5, 6}, Coord3{6, 5, 5}, Coord3{5, 6, 5},
                         Coord3{6, 7, 5}, Coord3{7, 6, 5}, Coord3{5, 4, 7},
                         Coord3{4, 5, 7}, Coord3{7, 8, 4}})
    f.set_faulty(c);
  const LabelField3D l(m, f);
  // MCC model: exactly two healthy nodes captured.
  EXPECT_EQ(l.healthy_unsafe_count(), 2);
  // The bounding-box model swallows the whole 4x5x4 cuboid.
  const auto bbox = baselines::bounding_box_fill(m, f);
  EXPECT_GT(bbox.healthy_unsafe_count(), 50);
}

// Figure 6: the (+Y-X)-edge of the Figure-5 MCC — the per-section NW-top
// corners across z levels, realized here through the section shadows.
TEST(Figure6, SectionStructureAcrossPlanes) {
  const mesh::Mesh3D m(10, 10, 10);
  mesh::FaultSet3D f(m);
  for (const Coord3 c : {Coord3{5, 5, 6}, Coord3{6, 5, 5}, Coord3{5, 6, 5},
                         Coord3{6, 7, 5}, Coord3{7, 6, 5}, Coord3{5, 4, 7},
                         Coord3{4, 5, 7}})
    f.set_faulty(c);
  const LabelField3D l(m, f);
  const MccSet3D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 1u);
  const MccRegion3D& r = mccs.regions()[0];
  // The region spans z = 5..7 and its z=5 section has a hole at (6,6):
  // the line through (6,6) along Z misses the region entirely.
  EXPECT_EQ(r.z0, 5);
  EXPECT_EQ(r.z1, 7);
  EXPECT_FALSE(r.line_hits_z(6, 6));
  // Sections: plane z=5 holds 4 cells + 1 fill, z=6 one fault + fill(5,5,5
  // is at z=5), z=7 holds the two top faults + can't-reach fill.
  int at5 = 0, at6 = 0, at7 = 0;
  for (const Coord3 c : r.cells) {
    at5 += c.z == 5;
    at6 += c.z == 6;
    at7 += c.z == 7;
  }
  EXPECT_EQ(at5, 5);  // 4 faults + useless (5,5,5)
  EXPECT_EQ(at6, 1);  // (5,5,6)
  EXPECT_EQ(at7, 3);  // 2 faults + can't-reach (5,5,7)
}

// Figure 7: feasibility check on the three RMP surfaces — a case where all
// three succeed and one where a surface fails.
TEST(Figure7, SurfaceChecks) {
  const mesh::Mesh3D m(10, 10, 10);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 0, 8, 0, 8, 4);  // blocks climbing inside the box
  const LabelField3D l(m, f);
  const auto bad = detect3d(m, l, {0, 0, 0}, {8, 8, 8});
  EXPECT_FALSE(bad.feasible());
  // Which surface fails is the (-Y) one (it must reach the plane z=zd).
  EXPECT_FALSE(bad.y_surface_ok);

  mesh::FaultSet3D f2(m);
  mesh::add_plate_z(f2, m, 2, 8, 2, 8, 4);  // western/southern rim open
  const LabelField3D l2(m, f2);
  const auto good = detect3d(m, l2, {0, 0, 0}, {8, 8, 8});
  EXPECT_TRUE(good.x_surface_ok);
  EXPECT_TRUE(good.y_surface_ok);
  EXPECT_TRUE(good.z_surface_ok);
}

// Figure 8: routing samples in 3-D around an MCC.
TEST(Figure8, RoutingAroundRegion) {
  const mesh::Mesh3D m(10, 10, 10);
  mesh::FaultSet3D f(m);
  for (const Coord3 c : {Coord3{5, 5, 6}, Coord3{6, 5, 5}, Coord3{5, 6, 5},
                         Coord3{6, 7, 5}, Coord3{7, 6, 5}, Coord3{5, 4, 7},
                         Coord3{4, 5, 7}, Coord3{7, 8, 4}})
    f.set_faulty(c);
  const MccModel3D model(m, f);
  const Coord3 s{0, 0, 0}, d{9, 9, 9};
  ASSERT_TRUE(model.feasible(s, d).feasible);
  for (const RouterKind k :
       {RouterKind::Oracle, RouterKind::Flood, RouterKind::Records}) {
    const auto r = model.route(s, d, k, RoutePolicy::Balanced, 13);
    ASSERT_TRUE(r.delivered) << to_string(k);
    EXPECT_EQ(r.hops(), 27);
    for (const Coord3 c : r.path) EXPECT_FALSE(f.is_faulty(c));
  }
}

}  // namespace
}  // namespace mcc::core
