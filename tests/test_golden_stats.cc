// Golden cost-accounting tests for the E7 protocol stack: the exact
// sim::RunStats (rounds / messages / payload words) of every distributed
// phase on small fixed meshes. The protocols are deterministic, so any
// change to these numbers is a real change to the protocol's cost model —
// an optimization or a regression, but never noise. Update the constants
// only after explaining the delta.
#include <gtest/gtest.h>

#include "mesh/fault_set.h"
#include "proto/detect_route.h"
#include "proto/stack2d.h"

namespace mcc::proto {
namespace {

void expect_stats(const sim::RunStats& got, size_t rounds, size_t messages,
                  size_t payload_words, const char* phase) {
  EXPECT_EQ(got.rounds, rounds) << phase << " rounds";
  EXPECT_EQ(got.messages, messages) << phase << " messages";
  EXPECT_EQ(got.payload_words, payload_words) << phase << " payload";
  EXPECT_TRUE(got.quiescent) << phase << " did not drain";
}

TEST(GoldenStats, FaultFree6x6StackIsPureBroadcast) {
  const mesh::Mesh2D m(6, 6);
  mesh::FaultSet2D f(m);
  Stack2D st(m, f);
  expect_stats(st.labeling_stats, 2, 156, 240, "labeling");
  expect_stats(st.exchange_stats, 2, 96, 120, "exchange");
  // No faults: identification and boundary phases send nothing.
  expect_stats(st.ident_stats, 0, 0, 0, "ident");
  expect_stats(st.boundary_stats, 0, 0, 0, "boundary");
  EXPECT_EQ(st.total_messages(), 252u);
  EXPECT_EQ(st.total_payload_words(), 360u);
}

TEST(GoldenStats, LBlockAndLoner8x8FullStack) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({3, 3});
  f.set_faulty({4, 3});
  f.set_faulty({3, 4});
  f.set_faulty({6, 6});
  Stack2D st(m, f);
  expect_stats(st.labeling_stats, 4, 354, 580, "labeling");
  expect_stats(st.exchange_stats, 2, 176, 224, "exchange");
  expect_stats(st.ident_stats, 13, 42, 416, "ident");
  expect_stats(st.boundary_stats, 6, 16, 148, "boundary");
  EXPECT_EQ(st.total_messages(), 588u);
  EXPECT_EQ(st.total_payload_words(), 1368u);
  EXPECT_EQ(st.ident.identified(), 2);
  EXPECT_EQ(st.ident.discarded(), 0);
}

TEST(GoldenStats, DetectAndRouteMessageCost8x8) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({3, 3});
  f.set_faulty({4, 3});
  f.set_faulty({3, 4});
  f.set_faulty({6, 6});
  Stack2D st(m, f);

  const auto det = run_detect2d(m, st.labeling, {0, 0}, {7, 7});
  EXPECT_TRUE(det.feasible());
  expect_stats(det.stats, 8, 16, 64, "detect");

  const auto rt = run_route2d(m, st.labeling, st.boundary, {0, 0}, {7, 7}, 5);
  EXPECT_TRUE(rt.delivered);
  EXPECT_EQ(rt.hops(), 14);  // minimal: Manhattan distance of (0,0)->(7,7)
  expect_stats(rt.stats, 15, 15, 30, "route");
}

TEST(GoldenStats, TwoRegions12x12FullStack) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  f.set_faulty({2, 2});
  f.set_faulty({2, 3});
  f.set_faulty({3, 2});
  f.set_faulty({7, 8});
  f.set_faulty({8, 8});
  Stack2D st(m, f);
  expect_stats(st.labeling_stats, 4, 756, 1224, "labeling");
  expect_stats(st.exchange_stats, 2, 408, 528, "exchange");
  expect_stats(st.ident_stats, 13, 46, 488, "ident");
  expect_stats(st.boundary_stats, 8, 17, 180, "boundary");
  EXPECT_EQ(st.total_messages(), 1227u);
  EXPECT_EQ(st.total_payload_words(), 2420u);
  EXPECT_EQ(st.ident.identified(), 2);
  EXPECT_EQ(st.ident.discarded(), 0);
}

TEST(GoldenStats, Labeling3DChunk5x5x5) {
  const mesh::Mesh3D m(5, 5, 5);
  mesh::FaultSet3D f(m);
  f.set_faulty({2, 2, 2});
  f.set_faulty({3, 2, 2});
  f.set_faulty({2, 3, 2});
  LabelingProtocol3D lab(m, f);
  expect_stats(lab.run(), 2, 725, 600, "labeling3d");
}

}  // namespace
}  // namespace mcc::proto
