// Labelling (Algorithms 1 & 4): rule-level unit tests, the paper's worked
// examples, and randomized property sweeps.
#include <gtest/gtest.h>

#include "core/labeling.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Coord3;

mesh::FaultSet2D faults2(const mesh::Mesh2D& m,
                         std::initializer_list<Coord2> cells) {
  mesh::FaultSet2D f(m);
  for (const Coord2 c : cells) f.set_faulty(c);
  return f;
}

mesh::FaultSet3D faults3(const mesh::Mesh3D& m,
                         std::initializer_list<Coord3> cells) {
  mesh::FaultSet3D f(m);
  for (const Coord3 c : cells) f.set_faulty(c);
  return f;
}

TEST(Labeling2D, FaultFreeMeshIsAllSafe) {
  const mesh::Mesh2D m(8, 8);
  const LabelField2D l(m, mesh::FaultSet2D(m));
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      EXPECT_EQ(l.state({x, y}), NodeState::Safe);
  EXPECT_EQ(l.healthy_unsafe_count(), 0);
}

TEST(Labeling2D, SingleFaultStaysAlone) {
  const mesh::Mesh2D m(8, 8);
  const LabelField2D l(m, faults2(m, {{4, 4}}));
  EXPECT_EQ(l.state({4, 4}), NodeState::Faulty);
  EXPECT_EQ(l.healthy_unsafe_count(), 0);
}

TEST(Labeling2D, DescendingDiagonalFillsUselessAndCantReach) {
  // Faults at (1,1) and (2,0): the node (1,0) has both positive neighbors
  // faulty -> useless; (2,1) has both negative neighbors faulty ->
  // can't-reach (Figure 1 of the paper, in miniature).
  const mesh::Mesh2D m(8, 8);
  const LabelField2D l(m, faults2(m, {{1, 1}, {2, 0}}));
  EXPECT_EQ(l.state({1, 0}), NodeState::Useless);
  EXPECT_EQ(l.state({2, 1}), NodeState::CantReach);
  EXPECT_EQ(l.healthy_unsafe_count(), 2);
}

TEST(Labeling2D, AscendingDiagonalStaysOpen) {
  // Faults at (1,0) and (2,1): the diagonal gap is passable to the NE, so
  // no healthy node joins a region.
  const mesh::Mesh2D m(8, 8);
  const LabelField2D l(m, faults2(m, {{1, 0}, {2, 1}}));
  EXPECT_EQ(l.healthy_unsafe_count(), 0);
}

TEST(Labeling2D, ConcavePocketOpeningSouthWestFillsAsCantReach) {
  // An L blocking the south and west of a pocket: the pocket can only be
  // entered with backward moves.
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  mesh::add_wall_x(f, m, 2, 2, 6);  // west wall of pocket
  mesh::add_wall_y(f, m, 2, 6, 2);  // south wall of pocket
  const LabelField2D l(m, f);
  for (int y = 3; y <= 6; ++y)
    for (int x = 3; x <= 6; ++x)
      EXPECT_EQ(l.state({x, y}), NodeState::CantReach) << x << "," << y;
  // Outside the pocket everything is safe.
  EXPECT_EQ(l.state({7, 7}), NodeState::Safe);
  EXPECT_EQ(l.state({1, 1}), NodeState::Safe);
}

TEST(Labeling2D, ConcavePocketOpeningNorthEastFillsAsUseless) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  mesh::add_wall_x(f, m, 7, 3, 7);  // east wall
  mesh::add_wall_y(f, m, 3, 7, 7);  // north wall
  const LabelField2D l(m, f);
  for (int y = 3; y <= 6; ++y)
    for (int x = 3; x <= 6; ++x)
      EXPECT_EQ(l.state({x, y}), NodeState::Useless) << x << "," << y;
}

TEST(Labeling2D, MeshWallsAreNotFaults) {
  // A fault adjacent to the mesh corner must not trigger wall-based fill:
  // the paper's labelling counts faulty/unsafe neighbors only.
  const mesh::Mesh2D m(8, 8);
  const LabelField2D l(m, faults2(m, {{0, 1}, {1, 0}}));
  // (0,0) has both positive neighbors faulty -> useless; (1,1) has both
  // negative neighbors faulty -> can't-reach. Nothing else: in particular
  // the mesh border nodes do not cascade (walls are not faults).
  EXPECT_EQ(l.state({0, 0}), NodeState::Useless);
  EXPECT_EQ(l.state({1, 1}), NodeState::CantReach);
  EXPECT_EQ(l.healthy_unsafe_count(), 2);
}

TEST(Labeling2D, UselessChainPropagates) {
  // Vertical fault wall with a fault to its east creates a cascade.
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  f.set_faulty({5, 5});
  f.set_faulty({4, 6});
  f.set_faulty({6, 4});
  // (4,5)? +X=(5,5) faulty, +Y=(4,6) faulty -> useless.
  // (5,4)? +X=(6,4) faulty, +Y=(5,5) faulty -> useless.
  // (4,4)? +X=(5,4) useless, +Y=(4,5) useless -> useless.
  const LabelField2D l(m, f);
  EXPECT_EQ(l.state({4, 5}), NodeState::Useless);
  EXPECT_EQ(l.state({5, 4}), NodeState::Useless);
  EXPECT_EQ(l.state({4, 4}), NodeState::Useless);
}

TEST(Labeling3D, TwoBlockedDirectionsAreNotEnough) {
  // In 3-D a node with only +X and +Y blocked can still route +Z: it must
  // stay safe (the paper's motivation for Algorithm 4).
  const mesh::Mesh3D m(8, 8, 8);
  const LabelField3D l(m, faults3(m, {{4, 3, 3}, {3, 4, 3}}));
  EXPECT_EQ(l.state({3, 3, 3}), NodeState::Safe);
  EXPECT_EQ(l.healthy_unsafe_count(), 0);
}

TEST(Labeling3D, ThreeBlockedDirectionsFill) {
  const mesh::Mesh3D m(8, 8, 8);
  const LabelField3D l(
      m, faults3(m, {{4, 3, 3}, {3, 4, 3}, {3, 3, 4}}));
  EXPECT_EQ(l.state({3, 3, 3}), NodeState::Useless);
  const LabelField3D l2(
      m, faults3(m, {{2, 3, 3}, {3, 2, 3}, {3, 3, 2}}));
  EXPECT_EQ(l2.state({3, 3, 3}), NodeState::CantReach);
}

TEST(Labeling3D, Figure5Example) {
  // The paper's Figure 5: faults (5,5,6), (6,5,5), (5,6,5), (6,7,5),
  // (7,6,5), (5,4,7), (4,5,7) and (7,8,4). The labelling must make (5,5,5)
  // useless and (5,5,7) can't-reach, and nothing else.
  const mesh::Mesh3D m(10, 10, 10);
  const LabelField3D l(m, faults3(m, {{5, 5, 6},
                                      {6, 5, 5},
                                      {5, 6, 5},
                                      {6, 7, 5},
                                      {7, 6, 5},
                                      {5, 4, 7},
                                      {4, 5, 7},
                                      {7, 8, 4}}));
  EXPECT_EQ(l.state({5, 5, 5}), NodeState::Useless);
  EXPECT_EQ(l.state({5, 5, 7}), NodeState::CantReach);
  EXPECT_EQ(l.useless_count(), 1);
  EXPECT_EQ(l.cant_reach_count(), 1);
}

// ---------------------------------------------------------------------------
// Properties

using util::SweepParam;  // the shared sweep cell (scenario.h); pairs unused

class LabelingSweep2D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LabelingSweep2D, RulesHoldAtFixpoint) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField2D l(m, f);

  auto blocked_pos = [&](Coord2 c) {
    return m.contains(c) && (l.state(c) == NodeState::Faulty ||
                             l.state(c) == NodeState::Useless);
  };
  auto blocked_neg = [&](Coord2 c) {
    return m.contains(c) && (l.state(c) == NodeState::Faulty ||
                             l.state(c) == NodeState::CantReach);
  };

  int healthy_unsafe = 0;
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const Coord2 c{x, y};
      const NodeState s = l.state(c);
      ASSERT_EQ(s == NodeState::Faulty, f.is_faulty(c));
      const bool pos_blocked = m.contains({x + 1, y}) &&
                               m.contains({x, y + 1}) &&
                               blocked_pos({x + 1, y}) &&
                               blocked_pos({x, y + 1});
      const bool neg_blocked = m.contains({x - 1, y}) &&
                               m.contains({x, y - 1}) &&
                               blocked_neg({x - 1, y}) &&
                               blocked_neg({x, y - 1});
      if (s == NodeState::Useless) {
        EXPECT_TRUE(pos_blocked) << c;
        ++healthy_unsafe;
      } else if (s == NodeState::CantReach) {
        EXPECT_TRUE(neg_blocked) << c;
        ++healthy_unsafe;
      } else if (s == NodeState::Safe) {
        // Fixpoint: no safe node still matches a fill rule.
        EXPECT_FALSE(pos_blocked) << c;
        EXPECT_FALSE(neg_blocked) << c;
      }
    }
  }
  EXPECT_EQ(healthy_unsafe, l.healthy_unsafe_count());
}

INSTANTIATE_TEST_SUITE_P(
    Random, LabelingSweep2D,
    ::testing::Values(SweepParam{8, 0.05, 11}, SweepParam{8, 0.15, 12},
                      SweepParam{16, 0.05, 13}, SweepParam{16, 0.10, 14},
                      SweepParam{16, 0.20, 15}, SweepParam{24, 0.10, 16},
                      SweepParam{24, 0.25, 17}, SweepParam{32, 0.08, 18},
                      SweepParam{32, 0.15, 19}, SweepParam{32, 0.30, 20}));

class LabelingSweep3D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LabelingSweep3D, RulesHoldAtFixpoint) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField3D l(m, f);

  auto blocked_pos = [&](Coord3 c) {
    return l.state(c) == NodeState::Faulty ||
           l.state(c) == NodeState::Useless;
  };
  auto blocked_neg = [&](Coord3 c) {
    return l.state(c) == NodeState::Faulty ||
           l.state(c) == NodeState::CantReach;
  };

  for (int z = 0; z < size; ++z) {
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const Coord3 c{x, y, z};
        const NodeState s = l.state(c);
        ASSERT_EQ(s == NodeState::Faulty, f.is_faulty(c));
        const bool in_pos = m.contains({x + 1, y, z}) &&
                            m.contains({x, y + 1, z}) &&
                            m.contains({x, y, z + 1});
        const bool in_neg = m.contains({x - 1, y, z}) &&
                            m.contains({x, y - 1, z}) &&
                            m.contains({x, y, z - 1});
        const bool pos_blocked = in_pos && blocked_pos({x + 1, y, z}) &&
                                 blocked_pos({x, y + 1, z}) &&
                                 blocked_pos({x, y, z + 1});
        const bool neg_blocked = in_neg && blocked_neg({x - 1, y, z}) &&
                                 blocked_neg({x, y - 1, z}) &&
                                 blocked_neg({x, y, z - 1});
        if (s == NodeState::Useless) {
          EXPECT_TRUE(pos_blocked) << c;
        } else if (s == NodeState::CantReach) {
          EXPECT_TRUE(neg_blocked) << c;
        } else if (s == NodeState::Safe) {
          EXPECT_FALSE(pos_blocked) << c;
          EXPECT_FALSE(neg_blocked) << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, LabelingSweep3D,
    ::testing::Values(SweepParam{6, 0.05, 21}, SweepParam{6, 0.15, 22},
                      SweepParam{8, 0.05, 23}, SweepParam{8, 0.10, 24},
                      SweepParam{10, 0.10, 25}, SweepParam{10, 0.20, 26},
                      SweepParam{12, 0.08, 27}, SweepParam{12, 0.15, 28}));

TEST(Labeling2D, HealthyUnsafeGrowsWithFaultRate) {
  const mesh::Mesh2D m(32, 32);
  util::Rng rng(99);
  double prev = 0;
  double cumulative = 0;
  for (const double rate : {0.05, 0.15, 0.30}) {
    util::Rng r2(rng.fork());
    double total = 0;
    for (int t = 0; t < 20; ++t) {
      util::Rng r3(r2.fork());
      const LabelField2D l(m, mesh::inject_uniform(m, rate, r3));
      total += l.healthy_unsafe_count();
    }
    cumulative = total / 20;
    EXPECT_GE(cumulative, prev);
    prev = cumulative;
  }
  EXPECT_GT(cumulative, 0.0);
}

}  // namespace
}  // namespace mcc::core
