// MCC extraction: component correctness, the staircase invariants the 2-D
// theory rests on, and the region predicates.
#include <gtest/gtest.h>

#include "core/mcc_region.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Coord3;

TEST(MccRegion2D, SingleFaultRegion) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({3, 4});
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 1u);
  const MccRegion2D& r = mccs.regions()[0];
  EXPECT_EQ(r.cells.size(), 1u);
  EXPECT_EQ(r.faulty_cells, 1);
  EXPECT_EQ(r.healthy_cells, 0);
  EXPECT_EQ(r.x0, 3);
  EXPECT_EQ(r.y1, 4);
  EXPECT_EQ(r.corner(), (Coord2{2, 3}));
  EXPECT_EQ(mccs.region_at({3, 4}), 0);
  EXPECT_EQ(mccs.region_at({0, 0}), -1);
}

TEST(MccRegion2D, DiagonalFaultsMergeThroughFill) {
  // Descending diagonal: the fill glues the two faults into one MCC.
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({2, 3});
  f.set_faulty({3, 2});
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 1u);
  EXPECT_EQ(mccs.regions()[0].cells.size(), 4u);  // 2 faults + 2 fills
  EXPECT_EQ(mccs.regions()[0].healthy_cells, 2);
}

TEST(MccRegion2D, AscendingDiagonalStaysSeparate) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  f.set_faulty({2, 2});
  f.set_faulty({3, 3});
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  EXPECT_EQ(mccs.regions().size(), 2u);
}

TEST(MccRegion2D, RegionPredicates) {
  // One 2x2 block at (3..4, 3..4).
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  for (int y = 3; y <= 4; ++y)
    for (int x = 3; x <= 4; ++x) f.set_faulty({x, y});
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 1u);
  const MccRegion2D& r = mccs.regions()[0];

  EXPECT_TRUE(r.in_forbidden_y({3, 2}));   // below, in column range
  EXPECT_TRUE(r.in_forbidden_y({4, 0}));
  EXPECT_FALSE(r.in_forbidden_y({2, 2}));  // west of column range
  EXPECT_TRUE(r.in_critical_y({4, 5}));    // above
  EXPECT_FALSE(r.in_critical_y({5, 5}));
  EXPECT_TRUE(r.in_forbidden_x({1, 3}));   // west, in row range
  EXPECT_FALSE(r.in_forbidden_x({1, 5}));
  EXPECT_TRUE(r.in_critical_x({7, 4}));    // east
  EXPECT_FALSE(r.in_critical_x({7, 2}));
  EXPECT_EQ(r.corner(), (Coord2{2, 2}));
}

using util::SweepParam;  // the shared sweep cell (scenario.h); pairs unused

class RegionSweep2D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RegionSweep2D, StaircaseInvariantsHold) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);

  size_t total_cells = 0;
  for (const MccRegion2D& r : mccs.regions()) {
    total_cells += r.cells.size();
    // The theory of the canonical (+X,+Y) quadrant: every MCC is an
    // ascending rectilinear-monotone staircase with contiguous spans.
    EXPECT_TRUE(r.column_spans_contiguous) << "region " << r.id;
    EXPECT_TRUE(r.row_spans_contiguous) << "region " << r.id;
    EXPECT_TRUE(r.monotone_ascending) << "region " << r.id;
    EXPECT_EQ(r.faulty_cells + r.healthy_cells,
              static_cast<int>(r.cells.size()));
    // Adjacent column spans must overlap or touch (connectivity).
    for (int x = r.x0 + 1; x <= r.x1; ++x)
      EXPECT_LE(r.bottom_at(x), r.top_at(x - 1) + 1);
  }
  // Every unsafe node is in exactly one region.
  size_t unsafe_nodes = 0;
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x)
      if (l.unsafe({x, y})) {
        ++unsafe_nodes;
        EXPECT_GE(mccs.region_at({x, y}), 0);
      } else {
        EXPECT_EQ(mccs.region_at({x, y}), -1);
      }
  EXPECT_EQ(total_cells, unsafe_nodes);
}

TEST_P(RegionSweep2D, RegionPairsAreDisjoint) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed + 1000);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);

  for (const MccRegion2D& r : mccs.regions()) {
    for (int y = 0; y < size; ++y)
      for (int x = 0; x < size; ++x) {
        const Coord2 c{x, y};
        // QX∩QY = ∅ and Q'X∩Q'Y = ∅ per region (staircase monotonicity).
        EXPECT_FALSE(r.in_forbidden_x(c) && r.in_forbidden_y(c)) << c;
        EXPECT_FALSE(r.in_critical_x(c) && r.in_critical_y(c)) << c;
        // Forbidden/critical of the same axis never overlap.
        EXPECT_FALSE(r.in_forbidden_y(c) && r.in_critical_y(c)) << c;
        EXPECT_FALSE(r.in_forbidden_x(c) && r.in_critical_x(c)) << c;
        // Region cells belong to no derived region.
        if (mccs.region_at(c) == r.id) {
          EXPECT_FALSE(r.in_forbidden_x(c) || r.in_forbidden_y(c) ||
                       r.in_critical_x(c) || r.in_critical_y(c))
              << c;
        }
      }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, RegionSweep2D,
    ::testing::Values(SweepParam{10, 0.10, 31}, SweepParam{10, 0.25, 32},
                      SweepParam{16, 0.10, 33}, SweepParam{16, 0.20, 34},
                      SweepParam{20, 0.15, 35}, SweepParam{24, 0.10, 36},
                      SweepParam{24, 0.30, 37}, SweepParam{32, 0.12, 38}));

TEST(MccRegion3D, Figure5Regions) {
  // Figure 5: two MCCs — the isolated fault (7,8,4), and the 9-cell region
  // made of 7 faults + useless (5,5,5) + can't-reach (5,5,7).
  const mesh::Mesh3D m(10, 10, 10);
  mesh::FaultSet3D f(m);
  for (const Coord3 c : {Coord3{5, 5, 6}, Coord3{6, 5, 5}, Coord3{5, 6, 5},
                         Coord3{6, 7, 5}, Coord3{7, 6, 5}, Coord3{5, 4, 7},
                         Coord3{4, 5, 7}, Coord3{7, 8, 4}})
    f.set_faulty(c);
  const LabelField3D l(m, f);
  const MccSet3D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 2u);

  const int big = mccs.region_at({5, 5, 6});
  const int small = mccs.region_at({7, 8, 4});
  ASSERT_NE(big, -1);
  ASSERT_NE(small, -1);
  EXPECT_NE(big, small);
  EXPECT_EQ(mccs.region(big).cells.size(), 9u);
  EXPECT_EQ(mccs.region(big).healthy_cells, 2);
  EXPECT_EQ(mccs.region(small).cells.size(), 1u);
  // (5,5,5) and (5,5,7) join the big region.
  EXPECT_EQ(mccs.region_at({5, 5, 5}), big);
  EXPECT_EQ(mccs.region_at({5, 5, 7}), big);
}

TEST(MccRegion3D, ShadowSpans) {
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 2, 5, 2, 5, 3);
  const LabelField3D l(m, f);
  const MccSet3D mccs(m, l);
  ASSERT_EQ(mccs.regions().size(), 1u);
  const MccRegion3D& r = mccs.regions()[0];
  EXPECT_TRUE(r.line_hits_z(3, 3));
  EXPECT_FALSE(r.line_hits_z(1, 3));
  EXPECT_TRUE(r.in_forbidden_z({3, 3, 2}));
  EXPECT_TRUE(r.in_critical_z({3, 3, 4}));
  EXPECT_FALSE(r.in_forbidden_z({3, 3, 3}));
  EXPECT_TRUE(r.in_forbidden_x({2, 3, 3}) ||
              r.in_critical_x({6, 3, 3}));  // x shadows exist on the plate row
}

class RegionSweep3D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RegionSweep3D, PartitionIsExact) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField3D l(m, f);
  const MccSet3D mccs(m, l);

  size_t total = 0;
  for (const MccRegion3D& r : mccs.regions()) {
    total += r.cells.size();
    for (const Coord3 c : r.cells) {
      EXPECT_EQ(mccs.region_at(c), r.id);
      EXPECT_GE(c.x, r.x0);
      EXPECT_LE(c.x, r.x1);
      EXPECT_GE(c.z, r.z0);
      EXPECT_LE(c.z, r.z1);
      // Shadow spans contain every cell.
      EXPECT_TRUE(r.line_hits_z(c.x, c.y));
      EXPECT_TRUE(r.line_hits_y(c.x, c.z));
      EXPECT_TRUE(r.line_hits_x(c.y, c.z));
    }
  }
  size_t unsafe_nodes = 0;
  for (size_t i = 0; i < m.node_count(); ++i)
    if (l.unsafe(m.coord(i))) ++unsafe_nodes;
  EXPECT_EQ(total, unsafe_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Random, RegionSweep3D,
    ::testing::Values(SweepParam{6, 0.10, 41}, SweepParam{8, 0.10, 42},
                      SweepParam{8, 0.20, 43}, SweepParam{10, 0.15, 44}));

}  // namespace
}  // namespace mcc::core
