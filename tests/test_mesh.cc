// Mesh substrate: coordinates, topology, fault sets, injectors, octant
// transforms and plane slices.
#include <gtest/gtest.h>

#include "mesh/coord.h"
#include "mesh/fault_injection.h"
#include "mesh/mesh.h"
#include "mesh/octant.h"
#include "mesh/slice.h"

namespace mcc::mesh {
namespace {

TEST(Coord, ManhattanDistance) {
  EXPECT_EQ(manhattan(Coord2{0, 0}, Coord2{3, 4}), 7);
  EXPECT_EQ(manhattan(Coord2{3, 4}, Coord2{0, 0}), 7);
  EXPECT_EQ(manhattan(Coord3{1, 2, 3}, Coord3{4, 0, 3}), 5);
}

TEST(Coord, StepAndOpposite) {
  EXPECT_EQ(step(Coord2{2, 2}, Dir2::PosX), (Coord2{3, 2}));
  EXPECT_EQ(step(Coord2{2, 2}, Dir2::NegY), (Coord2{2, 1}));
  for (const Dir2 d : kAllDir2)
    EXPECT_EQ(step(step(Coord2{5, 5}, d), opposite(d)), (Coord2{5, 5}));
  for (const Dir3 d : kAllDir3)
    EXPECT_EQ(step(step(Coord3{5, 5, 5}, d), opposite(d)),
              (Coord3{5, 5, 5}));
}

TEST(Coord, AxisOf) {
  EXPECT_EQ(axis_of(Dir2::PosX), 0);
  EXPECT_EQ(axis_of(Dir2::NegY), 1);
  EXPECT_EQ(axis_of(Dir3::PosZ), 2);
  EXPECT_EQ(axis_of(Dir3::NegZ), 2);
}

TEST(Mesh2D, NodeCountAndIndexRoundTrip) {
  const Mesh2D m(7, 5);
  EXPECT_EQ(m.node_count(), 35u);
  for (size_t i = 0; i < m.node_count(); ++i)
    EXPECT_EQ(m.index(m.coord(i)), i);
}

TEST(Mesh2D, NeighborDegrees) {
  const Mesh2D m(4, 4);
  auto degree = [&](Coord2 c) {
    int n = 0;
    m.for_each_neighbor(c, [&](Coord2, Dir2) { ++n; });
    return n;
  };
  EXPECT_EQ(degree({0, 0}), 2);   // corner
  EXPECT_EQ(degree({1, 0}), 3);   // edge
  EXPECT_EQ(degree({1, 1}), 4);   // interior
}

TEST(Mesh3D, NeighborDegrees) {
  const Mesh3D m(4, 4, 4);
  auto degree = [&](Coord3 c) {
    int n = 0;
    m.for_each_neighbor(c, [&](Coord3, Dir3) { ++n; });
    return n;
  };
  EXPECT_EQ(degree({0, 0, 0}), 3);
  EXPECT_EQ(degree({1, 0, 0}), 4);
  EXPECT_EQ(degree({1, 1, 0}), 5);
  EXPECT_EQ(degree({1, 1, 1}), 6);
  for (size_t i = 0; i < m.node_count(); ++i)
    EXPECT_EQ(m.index(m.coord(i)), i);
}

TEST(FaultSet, CountTracksChanges) {
  const Mesh2D m(8, 8);
  FaultSet2D f(m);
  EXPECT_EQ(f.count(), 0);
  f.set_faulty({1, 1});
  f.set_faulty({1, 1});  // idempotent
  f.set_faulty({2, 2});
  EXPECT_EQ(f.count(), 2);
  f.set_faulty({1, 1}, false);
  EXPECT_EQ(f.count(), 1);
  EXPECT_FALSE(f.is_faulty({1, 1}));
  EXPECT_TRUE(f.is_faulty({2, 2}));
  EXPECT_EQ(f.faulty_nodes().size(), 1u);
}

TEST(Injection, UniformRespectsProtectedNodes) {
  const Mesh2D m(16, 16);
  util::Rng rng(5);
  const auto f = inject_uniform(m, 0.5, rng, {{0, 0}, {15, 15}});
  EXPECT_FALSE(f.is_faulty({0, 0}));
  EXPECT_FALSE(f.is_faulty({15, 15}));
  EXPECT_GT(f.count(), 50);  // ~128 expected
}

TEST(Injection, ExactCountIsExact) {
  const Mesh2D m(10, 10);
  util::Rng rng(6);
  EXPECT_EQ(inject_exact(m, 17, rng).count(), 17);
  const Mesh3D m3(6, 6, 6);
  EXPECT_EQ(inject_exact(m3, 23, rng).count(), 23);
}

TEST(Injection, ClusteredFaultsAreConnectedish) {
  const Mesh2D m(20, 20);
  util::Rng rng(7);
  const auto f = inject_clustered(m, 30, 2, rng);
  EXPECT_EQ(f.count(), 30);
  // Every fault must have at least one faulty neighbor unless it is a
  // cluster seed (<= 2 seeds).
  int isolated = 0;
  for (const Coord2 c : f.faulty_nodes()) {
    bool has_faulty_nb = false;
    m.for_each_neighbor(
        c, [&](Coord2 n, Dir2) { has_faulty_nb |= f.is_faulty(n); });
    if (!has_faulty_nb) ++isolated;
  }
  EXPECT_LE(isolated, 2);
}

TEST(Injection, StructuredPatterns) {
  const Mesh3D m(8, 8, 8);
  FaultSet3D f(m);
  add_plate_z(f, m, 1, 6, 1, 6, 3);
  EXPECT_EQ(f.count(), 36);
  EXPECT_TRUE(f.is_faulty({3, 3, 3}));
  EXPECT_FALSE(f.is_faulty({3, 3, 4}));
  add_plate_x(f, m, 2, 0, 7, 0, 7);
  EXPECT_TRUE(f.is_faulty({2, 0, 0}));
}

TEST(Octant2, TransformIsInvolution) {
  const Mesh2D m(9, 7);
  for (int id = 0; id < 4; ++id) {
    const Octant2 o{(id & 1) != 0, (id & 2) != 0};
    EXPECT_EQ(o.id(), id);
    for (int y = 0; y < 7; ++y)
      for (int x = 0; x < 9; ++x) {
        const Coord2 c{x, y};
        EXPECT_EQ(o.untransform(o.transform(c, m), m), c);
      }
  }
}

TEST(Octant2, FromPairMakesDestinationDominant) {
  const Mesh2D m(9, 9);
  const Coord2 pairs[][2] = {
      {{2, 2}, {7, 7}}, {{7, 2}, {2, 7}}, {{2, 7}, {7, 2}}, {{7, 7}, {2, 2}},
      {{4, 4}, {4, 8}}, {{4, 4}, {8, 4}}, {{5, 5}, {5, 5}}};
  for (const auto& p : pairs) {
    const Octant2 o = Octant2::from_pair(p[0], p[1]);
    const Coord2 s = o.transform(p[0], m), d = o.transform(p[1], m);
    EXPECT_LE(s.x, d.x);
    EXPECT_LE(s.y, d.y);
    EXPECT_EQ(manhattan(s, d), manhattan(p[0], p[1]));
  }
}

TEST(Octant3, FromPairMakesDestinationDominant) {
  const Mesh3D m(9, 9, 9);
  util::Rng rng(8);
  for (int t = 0; t < 100; ++t) {
    const Coord3 a{rng.uniform_int(0, 8), rng.uniform_int(0, 8),
                   rng.uniform_int(0, 8)};
    const Coord3 b{rng.uniform_int(0, 8), rng.uniform_int(0, 8),
                   rng.uniform_int(0, 8)};
    const Octant3 o = Octant3::from_pair(a, b);
    const Coord3 s = o.transform(a, m), d = o.transform(b, m);
    EXPECT_LE(s.x, d.x);
    EXPECT_LE(s.y, d.y);
    EXPECT_LE(s.z, d.z);
    EXPECT_EQ(o.untransform(s, m), a);
  }
}

TEST(Octant, MaterializeMovesFaults) {
  const Mesh2D m(8, 8);
  FaultSet2D f(m);
  f.set_faulty({1, 2});
  const Octant2 o{true, false};
  const FaultSet2D g = materialize(f, m, o);
  EXPECT_TRUE(g.is_faulty({6, 2}));
  EXPECT_EQ(g.count(), 1);
}

TEST(Slice, ExtractsPlanes) {
  const Mesh3D m(4, 5, 6);
  FaultSet3D f(m);
  f.set_faulty({1, 2, 3});
  f.set_faulty({2, 2, 3});

  const auto xy = slice_faults(m, f, Plane::XY, 3);
  EXPECT_TRUE(xy.is_faulty({1, 2}));
  EXPECT_TRUE(xy.is_faulty({2, 2}));
  EXPECT_EQ(xy.count(), 2);

  const auto xz = slice_faults(m, f, Plane::XZ, 2);
  EXPECT_TRUE(xz.is_faulty({1, 3}));
  EXPECT_EQ(xz.count(), 2);

  const auto yz = slice_faults(m, f, Plane::YZ, 1);
  EXPECT_TRUE(yz.is_faulty({2, 3}));
  EXPECT_EQ(yz.count(), 1);

  // unslice/slice round trip.
  EXPECT_EQ(unslice(Plane::XZ, slice_coord(Plane::XZ, {1, 2, 3}), 2),
            (Coord3{1, 2, 3}));
}

}  // namespace
}  // namespace mcc::mesh
