// Public facade: arbitrary source/destination pairs, all orientation
// classes, degenerate reductions, and end-to-end consistency with the
// oracle in physical coordinates.
#include <gtest/gtest.h>

#include "core/model.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Coord3;

// Physical-coordinate oracle: monotone BFS between arbitrary endpoints.
bool oracle2(const mesh::Mesh2D& m, const mesh::FaultSet2D& f, Coord2 s,
             Coord2 d) {
  (void)m;
  if (f.is_faulty(s) || f.is_faulty(d)) return false;
  const int sx = s.x <= d.x ? 1 : -1, sy = s.y <= d.y ? 1 : -1;
  std::vector<Coord2> work{s};
  std::set<std::pair<int, int>> seen{{s.x, s.y}};
  while (!work.empty()) {
    const Coord2 c = work.back();
    work.pop_back();
    if (c == d) return true;
    for (const Coord2 n : {Coord2{c.x + sx, c.y}, Coord2{c.x, c.y + sy}}) {
      if (std::abs(n.x - s.x) > std::abs(d.x - s.x) ||
          std::abs(n.y - s.y) > std::abs(d.y - s.y))
        continue;
      if (f.is_faulty(n) || !seen.insert({n.x, n.y}).second) continue;
      work.push_back(n);
    }
  }
  return false;
}

bool oracle3(const mesh::Mesh3D& m, const mesh::FaultSet3D& f, Coord3 s,
             Coord3 d) {
  (void)m;
  if (f.is_faulty(s) || f.is_faulty(d)) return false;
  const int sx = s.x <= d.x ? 1 : -1, sy = s.y <= d.y ? 1 : -1,
            sz = s.z <= d.z ? 1 : -1;
  std::vector<Coord3> work{s};
  std::set<std::tuple<int, int, int>> seen{{s.x, s.y, s.z}};
  while (!work.empty()) {
    const Coord3 c = work.back();
    work.pop_back();
    if (c == d) return true;
    for (const Coord3 n :
         {Coord3{c.x + sx, c.y, c.z}, Coord3{c.x, c.y + sy, c.z},
          Coord3{c.x, c.y, c.z + sz}}) {
      if (std::abs(n.x - s.x) > std::abs(d.x - s.x) ||
          std::abs(n.y - s.y) > std::abs(d.y - s.y) ||
          std::abs(n.z - s.z) > std::abs(d.z - s.z))
        continue;
      if (f.is_faulty(n) || !seen.insert({n.x, n.y, n.z}).second) continue;
      work.push_back(n);
    }
  }
  return false;
}

TEST(Model2D, AllQuadrantsRouteCorrectly) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int x = 5; x <= 6; ++x)
    for (int y = 5; y <= 6; ++y) f.set_faulty({x, y});
  const MccModel2D model(m, f);

  const Coord2 corners[] = {{1, 1}, {10, 1}, {1, 10}, {10, 10}};
  for (const Coord2 s : corners)
    for (const Coord2 d : corners) {
      ASSERT_TRUE(model.feasible(s, d).feasible) << s << "->" << d;
      const auto r = model.route(s, d, RouterKind::Records,
                                 RoutePolicy::Random, 9);
      ASSERT_TRUE(r.delivered) << s << "->" << d << ": " << r.failure;
      EXPECT_EQ(r.hops(), manhattan(s, d));
      for (const Coord2 c : r.path) EXPECT_FALSE(f.is_faulty(c));
    }
}

TEST(Model2D, MatchesOracleOnRandomPairsAllQuadrants) {
  const mesh::Mesh2D m(14, 14);
  util::Rng rng(401);
  const auto f = mesh::inject_uniform(m, 0.15, rng);
  const MccModel2D model(m, f);
  util::Rng prng(402);

  for (int t = 0; t < 300; ++t) {
    const Coord2 s{prng.uniform_int(0, 13), prng.uniform_int(0, 13)};
    const Coord2 d{prng.uniform_int(0, 13), prng.uniform_int(0, 13)};
    // Skip pairs whose endpoints are unsafe in their quadrant class —
    // there the facade falls back to the oracle by design, so agreement
    // is trivially guaranteed; exercised separately below.
    const auto feas = model.feasible(s, d);
    const bool truth = oracle2(m, f, s, d);
    EXPECT_EQ(feas.feasible, truth) << s << "->" << d;
    if (truth) {
      const auto r =
          model.route(s, d, RouterKind::Oracle, RoutePolicy::Balanced, t);
      EXPECT_TRUE(r.delivered);
      EXPECT_EQ(r.hops(), manhattan(s, d));
    }
  }
}

TEST(Model2D, DegeneratePairsRouteStraight) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  f.set_faulty({5, 3});
  const MccModel2D model(m, f);
  // Row y=5 is clear.
  const auto r = model.route({2, 5}, {8, 5}, RouterKind::Records,
                             RoutePolicy::Random, 1);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 6);
  // Row y=3 is cut.
  EXPECT_FALSE(model.feasible({2, 3}, {8, 3}).feasible);
  // Reverse direction too.
  EXPECT_FALSE(model.feasible({8, 3}, {2, 3}).feasible);
  EXPECT_TRUE(model.route({8, 5}, {2, 5}, RouterKind::Oracle,
                          RoutePolicy::Random, 2)
                  .delivered);
}

TEST(Model2D, OctantModelsAreCached) {
  const mesh::Mesh2D m(8, 8);
  const MccModel2D model(m, mesh::FaultSet2D(m));
  const auto& a = model.octant(mesh::Octant2{false, false});
  const auto& b = model.octant(mesh::Octant2{false, false});
  EXPECT_EQ(&a, &b);
}

TEST(Model3D, AllOctantsRouteCorrectly) {
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 3, 4, 3, 4, 4);
  const MccModel3D model(m, f);

  const Coord3 corners[] = {{1, 1, 1}, {6, 1, 1}, {1, 6, 1}, {1, 1, 6},
                            {6, 6, 1}, {6, 1, 6}, {1, 6, 6}, {6, 6, 6}};
  for (const Coord3 s : corners)
    for (const Coord3 d : corners) {
      ASSERT_TRUE(model.feasible(s, d).feasible) << s << "->" << d;
      const auto r =
          model.route(s, d, RouterKind::Oracle, RoutePolicy::Random, 11);
      ASSERT_TRUE(r.delivered) << s << "->" << d << ": " << r.failure;
      EXPECT_EQ(r.hops(), manhattan(s, d));
    }
}

TEST(Model3D, MatchesOracleOnRandomPairsAllOctants) {
  const mesh::Mesh3D m(8, 8, 8);
  util::Rng rng(403);
  const auto f = mesh::inject_uniform(m, 0.12, rng);
  const MccModel3D model(m, f);
  util::Rng prng(404);

  for (int t = 0; t < 200; ++t) {
    const Coord3 s{prng.uniform_int(0, 7), prng.uniform_int(0, 7),
                   prng.uniform_int(0, 7)};
    const Coord3 d{prng.uniform_int(0, 7), prng.uniform_int(0, 7),
                   prng.uniform_int(0, 7)};
    const bool truth = oracle3(m, f, s, d);
    EXPECT_EQ(model.feasible(s, d).feasible, truth) << s << "->" << d;
    if (truth) {
      const auto r = model.route(s, d, RouterKind::Flood,
                                 RoutePolicy::Alternate, t);
      EXPECT_TRUE(r.delivered) << s << "->" << d << ": " << r.failure;
      EXPECT_EQ(r.hops(), manhattan(s, d));
      for (const Coord3 c : r.path) EXPECT_FALSE(f.is_faulty(c));
    }
  }
}

TEST(Model3D, PlaneDegenerateDelegatesToSlice) {
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  // Wall inside plane z=3 cutting it in half except one gap.
  for (int y = 0; y < 8; ++y)
    if (y != 6) f.set_faulty({4, y, 3});
  const MccModel3D model(m, f);
  // Within the plane, must detour through the gap at y=6: from (0,0,3) to
  // (7,2,3) the gap overshoots y -> infeasible.
  EXPECT_FALSE(model.feasible({0, 0, 3}, {7, 2, 3}).feasible);
  EXPECT_TRUE(model.feasible({0, 0, 3}, {7, 7, 3}).feasible);
  const auto r = model.route({0, 0, 3}, {7, 7, 3}, RouterKind::Records,
                             RoutePolicy::Random, 5);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 14);
  for (const Coord3 c : r.path) EXPECT_EQ(c.z, 3);
}

TEST(Model, InfeasiblePairsReportFailure) {
  const mesh::Mesh2D m(8, 8);
  mesh::FaultSet2D f(m);
  for (int i = 0; i < 8; ++i) f.set_faulty({i, 4});
  const MccModel2D model(m, f);
  const auto r = model.route({0, 0}, {7, 7}, RouterKind::Oracle,
                             RoutePolicy::Random, 1);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.failure, "infeasible");
}

}  // namespace
}  // namespace mcc::core
