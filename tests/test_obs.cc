// Observability layer tests (src/obs + its api threading):
//
//   * MetricRegistry unit behavior — deterministic lexicographic ordering,
//     counter/gauge/histogram semantics.
//   * Profiler edge attribution (parent observed per-thread), PhaseContext
//     as an untimed parent marker, and the off path as a no-op.
//   * TraceSink Chrome-trace output: well-formed JSON, ts monotone per
//     tid, capped buffer surfacing a drop marker.
//   * FlitTrace NDJSON lines + truncation marker.
//   * Front door: mcc.metrics/1 counters bit-identical across threads=1..4
//     (ISSUE 8 acceptance), instrumentation off/on leaving simulation
//     results byte-identical, the profile table, trace_json= output, the
//     golden flit trace (threads-invariant and pinned to a committed
//     file), build provenance, and the campaign progress heartbeat.
//   * mcc.metrics/1 schema validation positives and negatives.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/campaign.h"
#include "api/experiment.h"
#include "obs/obs.h"

namespace mcc {
namespace {

using api::Configuration;
using api::Experiment;
using api::Json;
using api::RunReport;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

Json parse_or_die(const std::string& text) {
  std::string error;
  Json doc = Json::parse(text, error);
  EXPECT_EQ(error, "") << "while parsing: " << text.substr(0, 200);
  return doc;
}

// ---------------------------------------------------------------------------
// MetricRegistry

TEST(MetricRegistry, CountersAccumulateAndOrderLexicographically) {
  obs::MetricRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.add_counter("zeta.last");
  reg.add_counter("alpha.first", 41);
  reg.add_counter("alpha.first");
  reg.set_counter("mid.pinned", 7);
  ASSERT_FALSE(reg.empty());

  const auto counters = reg.counters();
  std::vector<std::string> names;
  for (const auto& [name, value] : counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha.first", "mid.pinned",
                                             "zeta.last"}));
  EXPECT_EQ(counters.at("alpha.first"), 42u);
  EXPECT_EQ(counters.at("mid.pinned"), 7u);
  EXPECT_EQ(counters.at("zeta.last"), 1u);
}

TEST(MetricRegistry, GaugesAndHistograms) {
  obs::MetricRegistry reg;
  reg.set_gauge("rate", 2.5);
  reg.add_gauge("rate", 0.5);
  reg.add_gauge("fresh", 1.0);
  EXPECT_DOUBLE_EQ(reg.gauges().at("rate"), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauges().at("fresh"), 1.0);

  reg.observe("lat", 4.0);
  reg.observe("lat", 1.0);
  reg.observe("lat", 9.0);
  const obs::HistogramData h = reg.histograms().at("lat");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 14.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 9.0);
}

// ---------------------------------------------------------------------------
// Profiler

TEST(Profiler, ScopesAttributeToTheObservedParentEdge) {
  obs::RunObs ro;
  ro.profile_on = true;
  {
    obs::ScopedRunObs scoped(ro);
    obs::ProfScope run(obs::Phase::Run);
    {
      // Untimed context (the pool-worker marker): nested scopes see it as
      // their parent, but TickHeads itself accumulates no time or calls.
      obs::PhaseContext heads(obs::Phase::TickHeads);
      obs::ProfScope kernel(obs::Phase::KernelSafeReach);
    }
    obs::ProfScope kernel(obs::Phase::KernelFlood);
  }
  const obs::Profiler& p = ro.prof;
  EXPECT_EQ(p.edge_calls(obs::kPhaseRoot, obs::Phase::Run), 1u);
  EXPECT_EQ(p.edge_calls(static_cast<int>(obs::Phase::TickHeads),
                         obs::Phase::KernelSafeReach),
            1u);
  EXPECT_EQ(p.edge_calls(static_cast<int>(obs::Phase::Run),
                         obs::Phase::KernelFlood),
            1u);
  EXPECT_EQ(p.total_calls(obs::Phase::TickHeads), 0u);
  EXPECT_EQ(p.total_calls(obs::Phase::KernelSafeReach), 1u);
  EXPECT_GT(p.total_ns(obs::Phase::Run), 0u);
  // Run's children time is exactly what the two kernels accumulated.
  EXPECT_EQ(p.children_ns(obs::Phase::Run),
            p.edge_ns(static_cast<int>(obs::Phase::Run),
                      obs::Phase::KernelFlood));
}

TEST(Profiler, OffPathIsANoOp) {
  // No installation: scopes must not record anywhere or crash.
  {
    obs::ProfScope run(obs::Phase::Run);
    obs::PhaseContext heads(obs::Phase::TickHeads);
    obs::ProfScope kernel(obs::Phase::KernelSafeReach);
  }
  EXPECT_EQ(obs::profiler(), nullptr);
  EXPECT_EQ(obs::metrics(), nullptr);
  EXPECT_EQ(obs::trace(), nullptr);
  EXPECT_EQ(obs::flit_trace(), nullptr);
}

// ---------------------------------------------------------------------------
// TraceSink / FlitTrace

/// Parses a Chrome trace file and asserts the envelope ISSUE 8 requires:
/// a traceEvents array of complete events with name/ph/ts/tid, and ts
/// monotone non-decreasing per tid. Returns the parsed events.
std::vector<Json> check_chrome_trace(const std::string& path) {
  const Json doc = parse_or_die(slurp(path));
  const Json* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  if (events == nullptr || !events->is_array()) {
    ADD_FAILURE() << path << ": missing traceEvents array";
    return {};
  }
  std::map<uint64_t, int64_t> last_ts;
  for (const Json& e : events->items()) {
    EXPECT_TRUE(e.is_object());
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    const Json* ts = e.find("ts");
    const Json* tid = e.find("tid");
    EXPECT_NE(name, nullptr);
    EXPECT_NE(ph, nullptr);
    EXPECT_NE(ts, nullptr);
    EXPECT_NE(tid, nullptr);
    if (name == nullptr || ph == nullptr || ts == nullptr || tid == nullptr)
      return {};
    EXPECT_EQ(ph->as_string(), "X");
    const uint64_t lane = tid->as_uint64();
    const auto stamp = static_cast<int64_t>(ts->as_uint64());
    const auto it = last_ts.find(lane);
    if (it != last_ts.end()) {
      EXPECT_GE(stamp, it->second);
    }
    last_ts[lane] = stamp;
  }
  return events->items();
}

TEST(TraceSink, WritesSortedWellFormedChromeTrace) {
  obs::TraceSink sink;
  // Recorded deliberately out of ts order within tid 1: write() sorts.
  sink.complete("late", 1, 100, 5);
  sink.complete("early", 1, 50, 5, "\"cycle\":9");
  sink.complete("other_lane", 2, 10, 1);
  const std::string path = tmp_path("obs_trace_unit.json");
  ASSERT_TRUE(sink.write(path));

  const std::vector<Json> events = check_chrome_trace(path);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].find("name")->as_string(), "early");
  EXPECT_EQ(events[0].find("args")->find("cycle")->as_uint64(), 9u);
  EXPECT_EQ(events[1].find("name")->as_string(), "late");
  EXPECT_EQ(events[2].find("tid")->as_uint64(), 2u);
  std::remove(path.c_str());
}

TEST(TraceSink, CapDropsAndSurfacesAMarker) {
  obs::TraceSink sink(/*max_events=*/2);
  sink.complete("a", 1, 10, 1);
  sink.complete("b", 1, 20, 1);
  sink.complete("c", 1, 30, 1);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);

  const std::string path = tmp_path("obs_trace_cap.json");
  ASSERT_TRUE(sink.write(path));
  const Json doc = parse_or_die(slurp(path));
  const auto& events = doc.find("traceEvents")->items();
  ASSERT_EQ(events.size(), 3u);  // 2 kept + the drop marker
  EXPECT_EQ(events.back().find("name")->as_string(), "trace_buffer_full");
  EXPECT_EQ(events.back().find("args")->find("dropped")->as_uint64(), 1u);
  std::remove(path.c_str());
}

TEST(FlitTrace, NdjsonLinesAndTruncationMarker) {
  obs::FlitTrace ft(/*max_events=*/2);
  ft.event(3, "inject", 17, "\"src\":[0,0]");
  ft.event(4, "deliver", 17);
  ft.event(5, "inject", 18);  // over the cap: dropped
  const std::string path = tmp_path("obs_flit_unit.ndjson");
  ASSERT_TRUE(ft.write(path));

  std::istringstream lines(slurp(path));
  std::string line;
  std::vector<Json> docs;
  while (std::getline(lines, line)) docs.push_back(parse_or_die(line));
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].find("schema")->as_string(), "mcc.flit/1");
  EXPECT_EQ(docs[0].find("ev")->as_string(), "inject");
  EXPECT_EQ(docs[0].find("pkt")->as_uint64(), 17u);
  EXPECT_EQ(docs[0].find("src")->items().size(), 2u);
  EXPECT_EQ(docs[1].find("cycle")->as_uint64(), 4u);
  EXPECT_EQ(docs[2].find("ev")->as_string(), "truncated");
  EXPECT_EQ(docs[2].find("dropped")->as_uint64(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Front door: Experiment-level plumbing

/// Small 2-D wormhole-under-churn scenario: every instrumented subsystem
/// is on the path (dynamic runtime, guidance cache, router-parallel tick).
Configuration churn_cfg(int threads) {
  Configuration cfg;
  cfg.set("driver", "wormhole_churn");
  cfg.set("name", "obs-churn");
  cfg.set("dims", "2");
  cfg.set("fault_model", "dynamic");
  cfg.set("fault_rate", "0.05");
  cfg.set("ks", "6");
  cfg.set("churn", "4");
  cfg.set("policy", "model");
  cfg.set("traffic", "uniform");
  cfg.set("rates", "0.05");
  cfg.set("warmup", "50");
  cfg.set("measure", "200");
  cfg.set("drain", "5000");
  cfg.set("repair_min", "50");
  cfg.set("repair_max", "200");
  cfg.set("seed", "7");
  cfg.set("threads", std::to_string(threads));
  return cfg;
}

TEST(ObsFrontDoor, MetricsCountersBitIdenticalAcrossThreadCounts) {
  // ISSUE 8 acceptance: the mcc.metrics/1 counters section serializes to
  // the same bytes for threads=1..4. Gauges (pool spin/park, dedup waits)
  // are excluded from the contract by construction — they live in a
  // separate section.
  std::string reference;
  for (int threads = 1; threads <= 4; ++threads) {
    Configuration cfg = churn_cfg(threads);
    cfg.set("metrics", "1");
    const Json doc = Experiment(std::move(cfg)).run().to_json();
    const Json* obs = doc.find("obs");
    ASSERT_NE(obs, nullptr) << "threads=" << threads;
    EXPECT_EQ(obs->find("schema")->as_string(), api::kMetricsSchema);
    const Json* counters = obs->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_FALSE(counters->members().empty());
    // The dark counters the issue calls out must actually be present.
    for (const char* name :
         {"wh.delivered_packets", "wh.route_computes", "wh.arena_high_water",
          "cache.hits", "cache.misses"})
      EXPECT_NE(counters->find(name), nullptr) << name;
    if (threads == 1)
      reference = counters->dump();
    else
      EXPECT_EQ(counters->dump(), reference) << "threads=" << threads;
  }
}

TEST(ObsFrontDoor, InstrumentationDoesNotPerturbResults) {
  // Three runs of the same scenario: defaults, explicit metrics=0
  // profile=0, and fully instrumented. The first two must be byte-
  // identical outside the config echo (which records explicitly-set
  // keys); the instrumented run must reproduce the same tables and
  // metrics — observability reads the simulation, never steers it.
  const Json plain = Experiment(churn_cfg(2)).run().to_json();

  Configuration off = churn_cfg(2);
  off.set("metrics", "0");
  off.set("profile", "0");
  const Json off_doc = Experiment(std::move(off)).run().to_json();

  Configuration on = churn_cfg(2);
  on.set("metrics", "1");
  on.set("profile", "1");
  const Json on_doc = Experiment(std::move(on)).run().to_json();

  EXPECT_EQ(plain.find("obs"), nullptr);
  EXPECT_EQ(off_doc.find("obs"), nullptr);
  ASSERT_NE(on_doc.find("obs"), nullptr);

  for (const char* section : {"tables", "metrics", "seed", "build"}) {
    ASSERT_NE(plain.find(section), nullptr) << section;
    EXPECT_EQ(plain.find(section)->dump(), off_doc.find(section)->dump())
        << section;
  }
  // The instrumented run appends the profile table; everything before it
  // is the same simulation output.
  EXPECT_EQ(plain.find("metrics")->dump(), on_doc.find("metrics")->dump());
  const auto& plain_tables = plain.find("tables")->items();
  const auto& on_tables = on_doc.find("tables")->items();
  ASSERT_EQ(on_tables.size(), plain_tables.size() + 1);
  for (size_t i = 0; i < plain_tables.size(); ++i)
    EXPECT_EQ(plain_tables[i].dump(), on_tables[i].dump());
  EXPECT_EQ(on_tables.back().find("title")->as_string(), "profile");
}

TEST(ObsFrontDoor, ProfileTableNamesPhasesAndTopKernels) {
  Configuration cfg = churn_cfg(1);
  cfg.set("profile", "1");
  const RunReport report = Experiment(std::move(cfg)).run();
  ASSERT_FALSE(report.failed());

  const Json doc = report.to_json();
  const auto& tables = doc.find("tables")->items();
  ASSERT_FALSE(tables.empty());
  const Json& profile = tables.back();
  ASSERT_EQ(profile.find("title")->as_string(), "profile");
  // Tick phases and MCC kernels show up as rows with nonzero calls.
  std::map<std::string, bool> seen;
  for (const Json& row : profile.find("rows")->items())
    seen[row.items().at(0).as_string()] = true;
  // The 2-D dynamic model leans on the flood and label-fixpoint kernels;
  // safe-reach/cache-build are 3-D model-mode paths (covered by the
  // profiled smoke preset in the CTest matrix).
  for (const char* phase : {"run", "tick.wires", "tick.heads", "tick.alloc",
                            "tick.traverse", "tick.commit", "kernel.flood",
                            "kernel.label_fixpoint"})
    EXPECT_TRUE(seen[phase]) << phase;

  // The human rendering carries the top-kernels callout (ISSUE 8
  // acceptance names the top-2 kernels by share of cycle time).
  std::ostringstream os;
  report.render(os);
  EXPECT_NE(os.str().find("top kernels:"), std::string::npos);
}

TEST(ObsFrontDoor, TraceJsonIsWellFormedWithMonotoneTsPerTid) {
  const std::string path = tmp_path("obs_front_trace.json");
  Configuration cfg = churn_cfg(2);
  cfg.set("trace_json", path);
  const RunReport report = Experiment(std::move(cfg)).run();
  ASSERT_FALSE(report.failed());

  const std::vector<Json> events = check_chrome_trace(path);
  ASSERT_FALSE(events.empty());
  std::map<std::string, bool> names;
  for (const Json& e : events) names[e.find("name")->as_string()] = true;
  for (const char* phase :
       {"tick.wires", "tick.heads", "tick.alloc", "tick.traverse",
        "tick.commit"})
    EXPECT_TRUE(names[phase]) << phase;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Golden flit trace

/// Small fault-free 2-D load run. Keep in lockstep with the generator
/// command in tests/golden/README.md — the golden file is its output.
Configuration flit_cfg(int threads) {
  Configuration cfg;
  cfg.set("driver", "wormhole_load");
  cfg.set("name", "flit-golden");
  cfg.set("dims", "2");
  cfg.set("k", "4");
  cfg.set("policy", "model");
  cfg.set("fault_pattern", "none");
  cfg.set("traffic", "uniform");
  cfg.set("rates", "0.05");
  cfg.set("warmup", "10");
  cfg.set("measure", "60");
  cfg.set("drain", "2000");
  cfg.set("seed", "11");
  cfg.set("threads", std::to_string(threads));
  return cfg;
}

TEST(ObsFrontDoor, FlitTraceMatchesGoldenAndIsThreadCountInvariant) {
  const std::string p1 = tmp_path("obs_flit_t1.ndjson");
  const std::string p2 = tmp_path("obs_flit_t2.ndjson");
  {
    Configuration cfg = flit_cfg(1);
    cfg.set("flit_trace", p1);
    ASSERT_FALSE(Experiment(std::move(cfg)).run().failed());
  }
  {
    Configuration cfg = flit_cfg(2);
    cfg.set("flit_trace", p2);
    ASSERT_FALSE(Experiment(std::move(cfg)).run().failed());
  }
  const std::string t1 = slurp(p1);
  ASSERT_FALSE(t1.empty());
  // Flit lifecycle events are emitted from the serial tick phases only,
  // so the trace is byte-identical across thread counts, like the
  // simulation itself.
  EXPECT_EQ(t1, slurp(p2));

  // Pinned bytes: any change to injection, routing, or delivery order on
  // this scenario shows up as a golden diff (regenerate per
  // tests/golden/README.md if intended).
  const std::string golden =
      slurp(std::string(MCC_GOLDEN_DIR) + "/flit_trace_2d.ndjson");
  ASSERT_FALSE(golden.empty()) << "missing committed golden file";
  EXPECT_EQ(t1, golden);

  // Every line parses and carries the lifecycle schema.
  std::istringstream lines(t1);
  std::string line;
  size_t n = 0;
  std::map<std::string, bool> events;
  while (std::getline(lines, line)) {
    const Json doc = parse_or_die(line);
    EXPECT_EQ(doc.find("schema")->as_string(), "mcc.flit/1");
    events[doc.find("ev")->as_string()] = true;
    ++n;
  }
  EXPECT_GT(n, 10u);
  EXPECT_TRUE(events["inject"]);
  EXPECT_TRUE(events["route"]);
  EXPECT_TRUE(events["deliver"]);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

// ---------------------------------------------------------------------------
// mcc.metrics/1 schema validation

Json metrics_block() {
  Json counters = Json::object();
  counters.set("wh.delivered_packets", Json::number(uint64_t{128}));
  Json gauges = Json::object();
  gauges.set("pool.spin_iters", Json::number(3.5));
  Json hist = Json::object();
  hist.set("count", Json::number(uint64_t{2}));
  hist.set("sum", Json::number(5.0));
  hist.set("min", Json::number(2.0));
  hist.set("max", Json::number(3.0));
  Json hists = Json::object();
  hists.set("serve.query_us.p99", std::move(hist));
  Json obs = Json::object();
  obs.set("schema", Json::string(api::kMetricsSchema));
  obs.set("counters", std::move(counters));
  obs.set("gauges", std::move(gauges));
  obs.set("histograms", std::move(hists));
  return obs;
}

Json report_with_obs(Json obs) {
  RunReport r("obs-schema", "unit", 1);
  r.set_config_echo({});
  r.set_obs(std::move(obs));
  return r.to_json();
}

TEST(MetricsSchema, WellFormedBlockValidates) {
  const Json doc = report_with_obs(metrics_block());
  EXPECT_TRUE(api::validate_report_json(doc).empty());
  // Absent block is equally fine (instrumentation off).
  RunReport r("obs-schema", "unit", 1);
  r.set_config_echo({});
  EXPECT_TRUE(api::validate_report_json(r.to_json()).empty());
}

TEST(MetricsSchema, MalformedBlocksAreRejected) {
  {
    Json obs = metrics_block();
    obs.set("schema", Json::string("mcc.metrics/2"));
    EXPECT_FALSE(api::validate_report_json(report_with_obs(std::move(obs)))
                     .empty());
  }
  {
    // Counters must be non-negative integers, not floats or strings.
    Json obs = metrics_block();
    Json counters = Json::object();
    counters.set("wh.delivered_packets", Json::number(1.5));
    obs.set("counters", std::move(counters));
    EXPECT_FALSE(api::validate_report_json(report_with_obs(std::move(obs)))
                     .empty());
  }
  {
    Json obs = metrics_block();
    Json counters = Json::object();
    counters.set("wh.delivered_packets", Json::string("128"));
    obs.set("counters", std::move(counters));
    EXPECT_FALSE(api::validate_report_json(report_with_obs(std::move(obs)))
                     .empty());
  }
  {
    // Histogram entries need all four summary fields.
    Json obs = metrics_block();
    Json hist = Json::object();
    hist.set("count", Json::number(uint64_t{2}));
    hist.set("sum", Json::number(5.0));
    hist.set("min", Json::number(2.0));
    Json hists = Json::object();
    hists.set("partial", std::move(hist));
    obs.set("histograms", std::move(hists));
    EXPECT_FALSE(api::validate_report_json(report_with_obs(std::move(obs)))
                     .empty());
  }
  {
    Json obs = metrics_block();
    obs.set("counters", Json::array());
    EXPECT_FALSE(api::validate_report_json(report_with_obs(std::move(obs)))
                     .empty());
  }
}

// ---------------------------------------------------------------------------
// Build provenance

TEST(BuildProvenance, StampedIntoEveryReport) {
  const obs::BuildProvenance& bp = obs::build_provenance();
  EXPECT_FALSE(bp.compiler.empty());
  EXPECT_FALSE(bp.git_hash.empty());

  RunReport r("prov", "unit", 1);
  r.set_config_echo({});
  const Json doc = r.to_json();
  const Json* build = doc.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->find("git")->as_string(), bp.git_hash);
  EXPECT_EQ(build->find("compiler")->as_string(), bp.compiler);
  ASSERT_NE(build->find("hw_lanes"), nullptr);
  EXPECT_EQ(build->find("hw_lanes")->as_uint64(), bp.hw_lanes);
  EXPECT_TRUE(api::validate_report_json(doc).empty());
}

// ---------------------------------------------------------------------------
// Campaign progress heartbeat

TEST(CampaignProgress, HeartbeatEmitsParseableNdjson) {
  const std::string path = tmp_path("obs_progress.ndjson");
  std::remove(path.c_str());  // append-mode sink: start clean

  Configuration cfg;
  cfg.set("driver", "route_demo");
  cfg.set("name", "obs-progress");
  cfg.set("dims", "2");
  cfg.set("k", "8");
  cfg.set("sweep.fault_rate", "0.02, 0.05");
  cfg.set("progress_json", path);
  const api::Campaign campaign(std::move(cfg));
  const auto results = campaign.run_shard(1, 1, nullptr);
  ASSERT_EQ(results.size(), 2u);

  std::istringstream lines(slurp(path));
  std::string line;
  std::vector<Json> docs;
  while (std::getline(lines, line)) docs.push_back(parse_or_die(line));
  ASSERT_EQ(docs.size(), 4u);  // shard_start, 2 points, shard_done
  for (const Json& doc : docs) {
    EXPECT_EQ(doc.find("schema")->as_string(), api::kProgressSchema);
    EXPECT_EQ(doc.find("shard")->as_string(), "1/1");
  }
  EXPECT_EQ(docs.front().find("ev")->as_string(), "shard_start");
  EXPECT_EQ(docs.front().find("total")->as_uint64(), 2u);
  EXPECT_EQ(docs[1].find("ev")->as_string(), "point");
  EXPECT_EQ(docs[1].find("index")->as_uint64(), 0u);
  EXPECT_FALSE(docs[1].find("failed")->as_bool());
  EXPECT_EQ(docs[2].find("ev")->as_string(), "point");
  EXPECT_EQ(docs.back().find("ev")->as_string(), "shard_done");
  EXPECT_EQ(docs.back().find("points")->as_uint64(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcc
