// util::parallel_for contract: every index runs exactly once, results are
// thread-count independent when per-trial state is derived from the index,
// and exceptions thrown by the body propagate to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace mcc::util {
namespace {

TEST(ParallelFor, DefaultWorkersIsAtLeastOne) {
  EXPECT_GE(default_workers(), 1u);
}

TEST(ParallelFor, ZeroIterationsRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](size_t) { ++calls; });
  parallel_for(0, [&](size_t) { ++calls; }, 1);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce) {
  constexpr size_t kN = 10000;
  for (unsigned workers : {1u, 2u, default_workers()}) {
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(kN, [&](size_t i) { ++hits[i]; }, workers);
    for (size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
  }
}

TEST(ParallelFor, InlinePathPreservesOrder) {
  // workers <= 1 must run the loop inline and in order.
  std::vector<size_t> order;
  parallel_for(100, [&](size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, SeededTrialsAreThreadCountIndependent) {
  // The bench pattern: each trial derives its RNG from the index alone, so
  // the aggregate result must not depend on how trials map to workers.
  constexpr size_t kTrials = 512;
  auto run = [&](unsigned workers) {
    std::vector<uint64_t> out(kTrials);
    parallel_for(
        kTrials,
        [&](size_t i) {
          Rng rng(0xC0FFEE + static_cast<uint64_t>(i));
          uint64_t acc = 0;
          for (int k = 0; k < 100; ++k)
            acc += rng.uniform_int(0, 1000000);
          out[i] = acc;
        },
        workers);
    return out;
  };
  const std::vector<uint64_t> serial = run(1);
  const std::vector<uint64_t> parallel = run(default_workers());
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, ExceptionPropagatesFromSerialPath) {
  EXPECT_THROW(
      parallel_for(
          10, [&](size_t i) { if (i == 3) throw std::runtime_error("boom"); },
          1),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionPropagatesFromWorkers) {
  try {
    parallel_for(
        10000,
        [&](size_t i) {
          if (i == 4321) throw std::runtime_error("trial failed");
        },
        4);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial failed");
  }
}

TEST(ParallelFor, ExceptionStopsRemainingWork) {
  // After a throw the pool drains instead of finishing the range. Every
  // non-throwing iteration sleeps, so exhausting all kN indices would take
  // minutes — the only way the test finishes promptly (and ran stays far
  // below kN) is the drain kicking in.
  constexpr size_t kN = 100000;
  std::atomic<size_t> ran{0};
  EXPECT_THROW(parallel_for(
                   kN,
                   [&](size_t i) {
                     ++ran;
                     if (i == 0) throw std::runtime_error("early");
                     std::this_thread::sleep_for(std::chrono::milliseconds(1));
                   },
                   4),
               std::runtime_error);
  EXPECT_LT(ran.load(), kN);
}

}  // namespace
}  // namespace mcc::util
