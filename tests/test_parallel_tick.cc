// Router-parallel tick determinism and defensible measurement windows.
//
// The two-phase compute/commit barrier in Network<Topo>::step() claims
// bit-identical results for every Config::threads value — not "statistically
// equivalent", identical: the same RNG draws, the same latency histogram in
// the same insertion order, the same violations text. This suite pins that
// claim across topologies (2-D/3-D), routing functions (MCC model/oracle,
// fault-block), fault environments (fault-free, clustered, mid-run events,
// live churn) and the dropped-flit paths, exercises the per-shard staging
// through ragged shard counts, and covers the measurement-window accounting:
// begin_window() snapshots, window-scoped wedged/violations columns, and the
// convergence-based warmup. The CI TSan job runs this binary with real
// parallelism, so the phases are also raced under a watchdog.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "api/experiment.h"
#include "mesh/fault_injection.h"
#include "sim/wormhole/baseline_routing.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/network.h"
#include "sim/wormhole/routing.h"
#include "sim/wormhole/traffic.h"
#include "util/rng.h"

namespace mcc {
namespace {

using mesh::Coord2;
using mesh::Coord3;
using namespace sim::wh;  // NOLINT — the suite lives on this API

// Every field, exactly: the parallel tick promises bit-identity, so even
// the doubles must compare equal.
void expect_same(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.offered_flits, b.offered_flits);
  EXPECT_EQ(a.accepted_flits, b.accepted_flits);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.filtered, b.filtered);
  EXPECT_EQ(a.wedged_head_cycles, b.wedged_head_cycles);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.warmup_cycles_used, b.warmup_cycles_used);
  EXPECT_EQ(a.warmup_converged, b.warmup_converged);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.accepted_ci95, b.accepted_ci95);
  EXPECT_EQ(a.latency_ci95, b.latency_ci95);
  // Observability counters share the serial-phase accounting that makes
  // the tick bit-identical: route computations merge once per cycle, and
  // flit-arena slots are allocated/released only in serial phases, so the
  // high-water mark cannot depend on the lane count. pool_spin_iters and
  // pool_parks are deliberately NOT compared — they are scheduling noise
  // (and zero at threads=1).
  EXPECT_EQ(a.route_computes, b.route_computes);
  EXPECT_EQ(a.arena_high_water, b.arena_high_water);
}

// ---------------------------------------------------------------------------
// Thread-count invariance, static fault environments

TEST(ParallelTick, Clustered3DModelThreadCountInvariant) {
  const mesh::Mesh3D m(5, 5, 5);
  util::Rng frng(4242);
  const auto f = mesh::inject_clustered(m, 10, 2, frng);

  auto run = [&](int threads) {
    MccRouting3D routing(m, f, GuidanceMode::Model);
    Config cfg;
    cfg.threads = threads;
    const LoadPoint load{0.03, 200, 800, 20000};
    return run_load_point3d(m, f, routing, Pattern::Hotspot, cfg,
                            core::RoutePolicy::Random, load, 17);
  };
  const SimResult ref = run(1);
  EXPECT_GT(ref.delivered_packets, 0u);
  EXPECT_EQ(ref.violations, 0u);
  EXPECT_GT(ref.route_computes, 0u);
  EXPECT_GT(ref.arena_high_water, 0u);
  // 2 and 4 split 125 routers evenly-ish; 3 leaves a ragged last shard.
  for (const int threads : {2, 3, 4}) {
    SCOPED_TRACE(threads);
    expect_same(ref, run(threads));
  }
}

TEST(ParallelTick, FaultFree2DOracleThreadCountInvariant) {
  const mesh::Mesh2D m(8, 8);
  const mesh::FaultSet2D f(m);

  auto run = [&](int threads) {
    MccRouting2D routing(m, f, GuidanceMode::Oracle);
    Config cfg;
    cfg.threads = threads;
    const LoadPoint load{0.05, 200, 600, 20000};
    return run_load_point2d(m, f, routing, Pattern::Transpose, cfg,
                            core::RoutePolicy::Random, load, 29);
  };
  const SimResult ref = run(1);
  EXPECT_GT(ref.delivered_packets, 0u);
  expect_same(ref, run(4));
}

TEST(ParallelTick, FaultBlock2DThreadCountInvariant) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  for (int x = 4; x <= 6; ++x)
    for (int y = 4; y <= 5; ++y) f.set_faulty({x, y});

  auto run = [&](int threads) {
    FaultBlockRouting2D routing(m, f);
    Config cfg;
    cfg.threads = threads;
    const LoadPoint load{0.03, 150, 500, 20000};
    return run_load_point2d(m, f, routing, Pattern::Uniform, cfg,
                            core::RoutePolicy::Random, load, 91);
  };
  const SimResult ref = run(1);
  EXPECT_GT(ref.delivered_packets, 0u);
  expect_same(ref, run(4));
}

// More lanes than routers must clamp, not crash or skew.
TEST(ParallelTick, MoreThreadsThanRouters) {
  const mesh::Mesh2D m(3, 3);
  const mesh::FaultSet2D f(m);
  auto run = [&](int threads) {
    MccRouting2D routing(m, f, GuidanceMode::Model);
    Config cfg;
    cfg.threads = threads;
    const LoadPoint load{0.1, 50, 200, 5000};
    return run_load_point2d(m, f, routing, Pattern::Uniform, cfg,
                            core::RoutePolicy::Random, load, 3);
  };
  expect_same(run(1), run(64));
}

// ---------------------------------------------------------------------------
// Thread-count invariance through mid-run fault/repair events — the
// dropped-flit paths: dead-node buffer drops, wire drops, doomed-worm
// flushes, partial-reassembly retreats, plus the staged wire-failure path
// (the static routing function keeps steering worms into the dead node).

TEST(ParallelTick, LockstepEventsBitIdentical) {
  const mesh::Mesh2D m(8, 8);
  const mesh::FaultSet2D f(m);  // traffic keeps injecting everywhere

  MccRouting2D routing(m, f, GuidanceMode::Model);
  Config cfg1;
  cfg1.drop_infeasible = true;
  Config cfg4 = cfg1;
  cfg1.threads = 1;
  cfg4.threads = 4;
  Network2D a(m, f, routing, cfg1, core::RoutePolicy::Random, 77);
  Network2D b(m, f, routing, cfg4, core::RoutePolicy::Random, 77);
  TrafficGen2D ta(m, f, routing, Pattern::Uniform, 0xABCD);
  TrafficGen2D tb(m, f, routing, Pattern::Uniform, 0xABCD);

  const auto compare_now = [&](int cycle) {
    SCOPED_TRACE(cycle);
    ASSERT_EQ(a.stats().injected_flits, b.stats().injected_flits);
    ASSERT_EQ(a.stats().delivered_flits, b.stats().delivered_flits);
    ASSERT_EQ(a.stats().dropped_flits, b.stats().dropped_flits);
    ASSERT_EQ(a.stats().dropped_packets, b.stats().dropped_packets);
    ASSERT_EQ(a.stats().wedged_head_cycles, b.stats().wedged_head_cycles);
    ASSERT_EQ(a.stats().violations, b.stats().violations);
    ASSERT_EQ(a.stats().latency.count(), b.stats().latency.count());
    ASSERT_EQ(a.stats().latency.mean(), b.stats().latency.mean());
    // With a fault-oblivious static routing, worms legitimately wedge on
    // dead-facing VCs after apply_fault, so check_credits may fail — but it
    // must fail IDENTICALLY: same verdict, same message, either thread count.
    std::string err_a, err_b;
    const bool ok_a = a.check_credits(&err_a);
    const bool ok_b = b.check_credits(&err_b);
    ASSERT_EQ(ok_a, ok_b);
    ASSERT_EQ(err_a, err_b);
  };
  const auto run_both = [&](int cycles, bool inject) {
    for (int c = 0; c < cycles; ++c) {
      if (inject) {
        ta.tick(a, 0.05);
        tb.tick(b, 0.05);
      }
      a.step();
      b.step();
      if (c % 10 == 9) compare_now(static_cast<int>(a.cycle()));
    }
  };

  run_both(100, true);
  a.apply_fault({3, 3});
  b.apply_fault({3, 3});
  run_both(60, true);
  a.apply_fault({4, 3});
  b.apply_fault({4, 3});
  run_both(60, true);
  a.apply_repair({3, 3});
  b.apply_repair({3, 3});
  run_both(100, true);
  run_both(400, false);  // drain what still can complete
  compare_now(static_cast<int>(a.cycle()));
  // Events with a fault-oblivious model steer worms into the dead nodes —
  // make sure the run actually exercised the drop/violation paths.
  EXPECT_GT(a.stats().dropped_flits, 0u);
}

// ---------------------------------------------------------------------------
// Thread-count invariance under live churn, through the api front door
// (DynamicModel + timeline + drop_infeasible; 2-D and 3-D; MCC and
// fault-block policies). Tables and metrics must match cell for cell —
// only the config echo (the threads key itself) may differ.

TEST(ParallelTick, ChurnReportsThreadCountInvariant) {
  const auto run = [](int dims, const std::string& policy, int threads) {
    api::Configuration cfg;
    cfg.set("driver", "wormhole_churn");
    cfg.set("fault_model", "dynamic");
    cfg.set("dims", std::to_string(dims));
    cfg.set("k", "6");
    cfg.set("fault_pattern", "clustered");
    cfg.set("fault_count", "4");
    cfg.set("fault_clusters", "2");
    cfg.set("policy", policy);
    cfg.set("traffic", "uniform");
    cfg.set("rates", "0.02");
    cfg.set("churn", "4");
    cfg.set("warmup", "100");
    cfg.set("measure", "300");
    cfg.set("drain", "4000");
    cfg.set("stall", "500");
    cfg.set("threads", std::to_string(threads));
    api::Experiment exp(cfg);
    const api::RunReport report = exp.run();
    EXPECT_FALSE(report.failed()) << report.failure();
    const auto doc = report.to_json();
    return doc.find("tables")->dump() + "\n" + doc.find("metrics")->dump();
  };
  for (const int dims : {2, 3}) {
    for (const std::string policy : {"model", "fault_block"}) {
      SCOPED_TRACE(std::to_string(dims) + "D " + policy);
      EXPECT_EQ(run(dims, policy, 1), run(dims, policy, 4));
    }
  }
}

// ---------------------------------------------------------------------------
// Measurement-window accounting

// A routing function that never admits an output: every injected head
// wedges at its source queue forever. Makes the wedged-cycle count exactly
// computable: one per node with a queued head, per cycle.
struct WedgeRouting2D final : RoutingFunction2D {
  int vc_classes() const override { return 1; }
  int vc_class(Coord2, Coord2) const override { return 0; }
  size_t candidates(Coord2, Coord2, Coord2,
                    std::array<mesh::Dir2, 2>&) override {
    return 0;
  }
  bool feasible(Coord2 s, Coord2 d) override { return !(s == d); }
};

TEST(MeasurementWindow, WedgedCyclesAreWindowScoped) {
  const mesh::Mesh2D m(3, 3);
  const mesh::FaultSet2D f(m);
  WedgeRouting2D routing;
  const Config cfg;
  LoadPoint load;
  load.rate = 1.0;  // Bernoulli(1): every node holds a wedged head from
                    // its first cycle on
  load.warmup = 50;
  load.measure = 40;
  load.drain = 500;
  load.stall = 20;
  const SimResult r = run_load_point2d(m, f, routing, Pattern::Uniform, cfg,
                                       core::RoutePolicy::XFirst, load, 5);
  // 9 wedged heads per cycle over measure (40) + stalled drain (20) — and
  // NOT over the 50 warmup cycles, which the whole-run counter would have
  // added (810 instead of 540).
  EXPECT_EQ(r.wedged_head_cycles, 9u * (40u + 20u));
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.drained);
  EXPECT_EQ(r.delivered_packets, 0u);
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.violations, 0u);
}

TEST(MeasurementWindow, BeginWindowSnapshotsCounters) {
  const mesh::Mesh2D m(4, 4);
  mesh::FaultSet2D f(m);
  f.set_faulty({1, 1});
  MccRouting2D routing(m, f, GuidanceMode::Model);
  const Config cfg;
  Network2D net(m, f, routing, cfg, core::RoutePolicy::XFirst, 1);

  net.inject({1, 1}, {3, 3});  // dead source: a pre-window violation
  net.inject({0, 0}, {3, 3});
  for (int c = 0; c < 100 && !net.idle(); ++c) net.step();
  ASSERT_TRUE(net.idle());

  const WindowStart w = net.begin_window();
  EXPECT_EQ(w.violations, 1u);
  EXPECT_EQ(w.injected_flits, net.stats().injected_flits);
  EXPECT_EQ(w.delivered_flits, net.stats().delivered_flits);
  EXPECT_EQ(w.wedged_head_cycles, net.stats().wedged_head_cycles);
  EXPECT_EQ(net.stats().latency.count(), 0u);  // histogram cleared

  net.inject({1, 1}, {3, 3});
  net.inject({1, 1}, {2, 2});
  EXPECT_EQ(net.stats().violations.size() - w.violations, 2u);
}

// ---------------------------------------------------------------------------
// Convergence-based warmup

TEST(ConvergenceWarmup, FixedModeLeavesConvergenceFieldsInert) {
  const mesh::Mesh2D m(6, 6);
  const mesh::FaultSet2D f(m);
  MccRouting2D routing(m, f, GuidanceMode::Model);
  LoadPoint load;
  load.rate = 0.03;
  load.warmup = 120;
  load.measure = 300;
  const SimResult r = run_load_point2d(m, f, routing, Pattern::Uniform,
                                       Config{}, core::RoutePolicy::Random,
                                       load, 7);
  EXPECT_EQ(r.warmup_cycles_used, 120u);
  EXPECT_FALSE(r.warmup_converged);
  EXPECT_EQ(r.samples, 0u);
  EXPECT_EQ(r.accepted_ci95, 0.0);
  EXPECT_EQ(r.latency_ci95, 0.0);
}

TEST(ConvergenceWarmup, ConvergesEarlyAndReportsCIs) {
  const mesh::Mesh2D m(8, 8);
  const mesh::FaultSet2D f(m);
  MccRouting2D routing(m, f, GuidanceMode::Model);
  LoadPoint load;
  load.rate = 0.03;
  load.warmup = 8000;  // cap, far beyond what steady state needs
  load.measure = 1000;
  load.warmup_mode = WarmupMode::Converge;
  load.sample_period = 200;
  load.convergence = 0.3;  // loose: settles within a few periods
  const SimResult r = run_load_point2d(m, f, routing, Pattern::Uniform,
                                       Config{}, core::RoutePolicy::Random,
                                       load, 13);
  EXPECT_TRUE(r.warmup_converged);
  EXPECT_LT(r.warmup_cycles_used, 8000u);
  EXPECT_EQ(r.warmup_cycles_used % 200, 0u);  // whole sample periods
  EXPECT_EQ(r.samples, 5u);                   // 1000 / 200
  EXPECT_GE(r.accepted_ci95, 0.0);
  EXPECT_GE(r.latency_ci95, 0.0);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.violations, 0u);
}

TEST(ConvergenceWarmup, UnattainableThresholdHitsTheCap) {
  const mesh::Mesh2D m(6, 6);
  const mesh::FaultSet2D f(m);
  MccRouting2D routing(m, f, GuidanceMode::Model);
  LoadPoint load;
  load.rate = 0.03;
  load.warmup = 600;
  load.measure = 200;
  load.warmup_mode = WarmupMode::Converge;
  load.sample_period = 100;
  load.convergence = 0.0;  // rel-delta < 0 never holds
  const SimResult r = run_load_point2d(m, f, routing, Pattern::Uniform,
                                       Config{}, core::RoutePolicy::Random,
                                       load, 19);
  EXPECT_FALSE(r.warmup_converged);
  EXPECT_EQ(r.warmup_cycles_used, 600u);
}

TEST(ConvergenceWarmup, ConvergeModeThreadCountInvariant) {
  const mesh::Mesh3D m(4, 4, 4);
  util::Rng frng(11);
  const auto f = mesh::inject_clustered(m, 4, 1, frng);
  auto run = [&](int threads) {
    MccRouting3D routing(m, f, GuidanceMode::Model);
    Config cfg;
    cfg.threads = threads;
    LoadPoint load;
    load.rate = 0.03;
    load.warmup = 2000;
    load.measure = 600;
    load.warmup_mode = WarmupMode::Converge;
    load.sample_period = 150;
    load.convergence = 0.25;
    return run_load_point3d(m, f, routing, Pattern::Uniform, cfg,
                            core::RoutePolicy::Random, load, 23);
  };
  expect_same(run(1), run(4));
}

}  // namespace
}  // namespace mcc
