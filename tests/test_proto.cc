// Distributed protocols: the message-passing stack must reproduce the
// centralized model — labels, shapes, detection verdicts and routing
// behavior — using neighbor messages only.
#include <gtest/gtest.h>

#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "proto/stack2d.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::proto {
namespace {

using core::NodeState;
using mesh::Coord2;
using mesh::Coord3;

using util::SweepParam;  // the shared sweep cell (scenario.h); pairs unused

class ProtoLabelSweep2D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtoLabelSweep2D, MatchesCentralizedLabels) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const core::LabelField2D central(m, f);

  LabelingProtocol2D proto(m, f);
  const auto stats = proto.run();
  EXPECT_TRUE(stats.quiescent);
  // Algorithm 1 does not fix an evaluation order and a node can satisfy
  // BOTH fill rules, so label KINDS may differ between valid fixpoints
  // (tie-breaks cascade). The UNSAFE SET however is order-confluent — a
  // useless node's positive neighbors are already unsafe by its own rule,
  // so can't-reach chains never lose members to the tie-break (and
  // symmetrically). We therefore require: identical unsafe sets, identical
  // faulty nodes, and internal rule-validity of the distributed fixpoint.
  auto bp = [&](Coord2 n) {
    return m.contains(n) && (proto.state(n) == NodeState::Faulty ||
                             proto.state(n) == NodeState::Useless);
  };
  auto bn = [&](Coord2 n) {
    return m.contains(n) && (proto.state(n) == NodeState::Faulty ||
                             proto.state(n) == NodeState::CantReach);
  };
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      const Coord2 c{x, y};
      ASSERT_EQ(core::is_unsafe(proto.state(c)),
                core::is_unsafe(central.state(c)))
          << c << " seed " << seed;
      ASSERT_EQ(proto.state(c) == NodeState::Faulty,
                central.state(c) == NodeState::Faulty)
          << c;
      const bool in_pos = m.contains({c.x + 1, c.y}) &&
                          m.contains({c.x, c.y + 1});
      const bool in_neg = m.contains({c.x - 1, c.y}) &&
                          m.contains({c.x, c.y - 1});
      const bool pos_ok =
          in_pos && bp({c.x + 1, c.y}) && bp({c.x, c.y + 1});
      const bool neg_ok =
          in_neg && bn({c.x - 1, c.y}) && bn({c.x, c.y - 1});
      switch (proto.state(c)) {
        case NodeState::Useless:
          EXPECT_TRUE(pos_ok) << c;
          break;
        case NodeState::CantReach:
          EXPECT_TRUE(neg_ok) << c;
          break;
        case NodeState::Safe:
          EXPECT_FALSE(pos_ok) << c;
          EXPECT_FALSE(neg_ok) << c;
          break;
        case NodeState::Faulty:
          break;
      }
    }
}

TEST_P(ProtoLabelSweep2D, NeighborhoodExchangeGivesDiagonals) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed + 40);
  const auto f = mesh::inject_uniform(m, rate, rng);
  LabelingProtocol2D proto(m, f);
  proto.run();
  proto.exchange_neighborhoods();
  const core::LabelField2D central(m, f);
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x)
      for (int sx : {-1, 1})
        for (int sy : {-1, 1}) {
          const Coord2 dcell{x + sx, y + sy};
          if (!m.contains(dcell)) continue;
          EXPECT_EQ(proto.diagonal_state({x, y}, sx, sy),
                    central.state(dcell))
              << x << "," << y;
        }
}

INSTANTIATE_TEST_SUITE_P(
    Random, ProtoLabelSweep2D,
    ::testing::Values(SweepParam{8, 0.10, 601}, SweepParam{12, 0.15, 602},
                      SweepParam{16, 0.10, 603}, SweepParam{16, 0.25, 604},
                      SweepParam{24, 0.15, 605}, SweepParam{32, 0.20, 606}));

class ProtoLabelSweep3D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtoLabelSweep3D, MatchesCentralizedLabels) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const core::LabelField3D central(m, f);
  LabelingProtocol3D proto(m, f);
  EXPECT_TRUE(proto.run().quiescent);
  // Unsafe sets are order-confluent; kinds may tie-break differently (see
  // the 2-D sweep above).
  for (size_t i = 0; i < m.node_count(); ++i) {
    const Coord3 c = m.coord(i);
    ASSERT_EQ(core::is_unsafe(proto.state(c)),
              core::is_unsafe(central.state(c)))
        << c;
    ASSERT_EQ(proto.state(c) == NodeState::Faulty,
              central.state(c) == NodeState::Faulty)
        << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, ProtoLabelSweep3D,
    ::testing::Values(SweepParam{6, 0.10, 611}, SweepParam{8, 0.15, 612},
                      SweepParam{10, 0.10, 613}, SweepParam{10, 0.25, 614}));

TEST(ProtoLabeling, MessageCostScalesWithFaultsNotVolume) {
  // Fault-free: one status broadcast per node, no cascades.
  const mesh::Mesh2D m(24, 24);
  LabelingProtocol2D clean(m, mesh::FaultSet2D(m));
  const auto s0 = clean.run();
  util::Rng rng(620);
  const auto f = mesh::inject_uniform(m, 0.15, rng);
  LabelingProtocol2D dirty(m, f);
  const auto s1 = dirty.run();
  EXPECT_GT(s1.messages, s0.messages);
  // The clean run is exactly one broadcast wave (<= 4 messages/node) plus
  // the bootstrap injections.
  EXPECT_LE(s0.messages, m.node_count() * 5);
}

TEST(ProtoIdent, SingleBlockIdentified) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int x = 4; x <= 6; ++x)
    for (int y = 5; y <= 6; ++y) f.set_faulty({x, y});
  Stack2D stack(m, f);
  ASSERT_EQ(stack.ident.corners().size(), 1u);
  EXPECT_EQ(stack.ident.corners()[0], (Coord2{3, 4}));
  EXPECT_EQ(stack.ident.identified(), 1);
  const auto shape = stack.ident.shape_at({3, 4});
  ASSERT_TRUE(shape);
  EXPECT_EQ(shape->x0, 4);
  EXPECT_EQ(shape->x1, 6);
  EXPECT_EQ(shape->bot, (std::vector<int>{5, 5, 5}));
  EXPECT_EQ(shape->top, (std::vector<int>{6, 6, 6}));
}

TEST(ProtoIdent, StaircaseShapeReconstructed) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  // Ascending staircase region: cols 4..6, spans [4,5],[4,6],[5,7].
  for (const Coord2 c : {Coord2{4, 4}, Coord2{4, 5}, Coord2{5, 4},
                         Coord2{5, 5}, Coord2{5, 6}, Coord2{6, 5},
                         Coord2{6, 6}, Coord2{6, 7}})
    f.set_faulty(c);
  Stack2D stack(m, f);
  ASSERT_EQ(stack.ident.identified(), 1);
  const auto shape = stack.ident.shape_at({3, 3});
  ASSERT_TRUE(shape);
  EXPECT_EQ(shape->bot, (std::vector<int>{4, 4, 5}));
  EXPECT_EQ(shape->top, (std::vector<int>{5, 6, 7}));
}

class ProtoIdentSweep : public ::testing::TestWithParam<SweepParam> {};

// Shapes assembled at corners must match the centralized eight-connected
// extraction whenever identification succeeds and the region is clear of
// the mesh edge (edge-touching rings are broken; the paper leaves them
// open and the protocol discards them).
TEST_P(ProtoIdentSweep, ShapesMatchCentralizedEightConnected) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const core::LabelField2D labels(m, f);
  const core::MccSet2D mccs(m, labels, core::Connectivity::Eight);

  Stack2D stack(m, f);
  int matched = 0;
  for (const Coord2 c : stack.ident.corners()) {
    const auto shape = stack.ident.shape_at(c);
    if (!shape) continue;
    // Identify the centralized region via the corner's NE diagonal cell.
    const int id = mccs.region_at({c.x + 1, c.y + 1});
    ASSERT_GE(id, 0) << c;
    const auto& central = mccs.region(id);
    if (central.x0 == 0 || central.y0 == 0 ||
        central.x1 == size - 1 || central.y1 == size - 1)
      continue;  // edge-touching: protocol behavior intentionally open
    EXPECT_EQ(shape->x0, central.x0) << c;
    EXPECT_EQ(shape->bot, central.bot) << c;
    EXPECT_EQ(shape->top, central.top) << c;
    ++matched;
  }
  // The sweep must actually exercise identification.
  if (rate >= 0.05) {
    EXPECT_GT(matched, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, ProtoIdentSweep,
    ::testing::Values(SweepParam{12, 0.08, 631}, SweepParam{16, 0.10, 632},
                      SweepParam{16, 0.15, 633}, SweepParam{20, 0.12, 634},
                      SweepParam{24, 0.10, 635}, SweepParam{24, 0.18, 636}));

TEST(ProtoBoundary, RecordsDepositedAlongWalls) {
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int x = 4; x <= 6; ++x)
    for (int y = 5; y <= 6; ++y) f.set_faulty({x, y});
  Stack2D stack(m, f);
  // Y wall descends x=3 from the corner (3,4); X wall runs west along y=4.
  for (int y = 0; y <= 4; ++y) {
    const auto& recs = stack.boundary.records_at({3, y});
    EXPECT_FALSE(recs.empty()) << y;
  }
  for (int x = 0; x <= 3; ++x) {
    const auto& recs = stack.boundary.records_at({x, 4});
    EXPECT_FALSE(recs.empty()) << x;
  }
  EXPECT_EQ(stack.boundary.records_at({8, 8}).size(), 0u);
}

TEST(ProtoDetect2D, MatchesCentralizedWalkers) {
  const mesh::Mesh2D m(16, 16);
  util::Rng rng(641);
  const auto f = mesh::inject_uniform(m, 0.15, rng);
  const core::LabelField2D central(m, f);
  LabelingProtocol2D labels(m, f);
  labels.run();

  util::Rng prng(642);
  for (int t = 0; t < 150; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (central.unsafe(s) || central.unsafe(d)) continue;
    const auto want = core::detect2d(m, central, s, d);
    const auto got = run_detect2d(m, labels, s, d);
    EXPECT_EQ(got.y_walker_ok, want.y_walker_ok) << s << d;
    EXPECT_EQ(got.x_walker_ok, want.x_walker_ok) << s << d;
  }
}

TEST(ProtoDetect3D, MatchesCentralizedFloods) {
  const mesh::Mesh3D m(8, 8, 8);
  util::Rng rng(651);
  const auto f = mesh::inject_uniform(m, 0.15, rng);
  const core::LabelField3D central(m, f);
  LabelingProtocol3D labels(m, f);
  labels.run();

  util::Rng prng(652);
  for (int t = 0; t < 80; ++t) {
    const Coord3 s{prng.uniform_int(0, 6), prng.uniform_int(0, 6),
                   prng.uniform_int(0, 6)};
    const Coord3 d{prng.uniform_int(s.x + 1, 7), prng.uniform_int(s.y + 1, 7),
                   prng.uniform_int(s.z + 1, 7)};
    if (central.unsafe(s) || central.unsafe(d)) continue;
    const auto want = core::detect3d(m, central, s, d);
    const auto got = run_detect3d(m, labels, s, d);
    EXPECT_EQ(got.feasible(), want.feasible()) << s << d;
  }
}

class ProtoRouteSweep : public ::testing::TestWithParam<SweepParam> {};

// End-to-end: distributed detection + distributed routing must deliver a
// minimal path whenever the centralized model says one exists.
// Configurations where any region corner is swallowed by a diagonal
// neighbor are skipped (known distributed-layer limitation; DESIGN.md §8).
TEST_P(ProtoRouteSweep, DeliversMinimalWheneverFeasible) {
  const auto [size, rate, seed, param_pairs] = GetParam();
  (void)param_pairs;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  // Keep a one-node clear border so no region touches a mesh edge (the
  // identification ring would be broken there; DESIGN.md §8).
  auto f = mesh::inject_uniform(m, rate, rng);
  for (int x = 0; x < size; ++x) {
    f.set_faulty({x, 0}, false);
    f.set_faulty({x, size - 1}, false);
  }
  for (int y = 0; y < size; ++y) {
    f.set_faulty({0, y}, false);
    f.set_faulty({size - 1, y}, false);
  }
  const core::LabelField2D central(m, f);
  const core::MccSet2D mccs(m, central, core::Connectivity::Eight);
  for (const auto& r : mccs.regions()) {
    const Coord2 c = r.corner();
    if (m.contains(c) && central.unsafe(c))
      GTEST_SKIP();  // swallowed corner: known distributed-layer limitation
  }

  Stack2D stack(m, f);
  util::Rng prng(seed * 3 + 1);
  int routed = 0;
  for (int t = 0; t < 400 && routed < 40; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (central.unsafe(s) || central.unsafe(d)) continue;
    if (!run_detect2d(m, stack.labeling, s, d).feasible()) continue;
    ++routed;
    const auto r = run_route2d(m, stack.labeling, stack.boundary, s, d,
                               seed ^ static_cast<uint64_t>(t));
    ASSERT_TRUE(r.delivered) << "s=" << s << " d=" << d << " seed=" << seed;
    EXPECT_EQ(r.hops(), manhattan(s, d));
    for (const Coord2 c : r.path)
      EXPECT_NE(central.state(c), NodeState::Faulty);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, ProtoRouteSweep,
    ::testing::Values(SweepParam{12, 0.06, 661}, SweepParam{12, 0.10, 662},
                      SweepParam{16, 0.08, 663}, SweepParam{16, 0.12, 664},
                      SweepParam{20, 0.08, 665}, SweepParam{20, 0.12, 666},
                      SweepParam{24, 0.08, 667}, SweepParam{24, 0.12, 668}));

TEST(ProtoStack, CostGrowsWithFaultPerimeter) {
  const mesh::Mesh2D m(24, 24);
  util::Rng r1(671), r2(672);
  Stack2D sparse(m, mesh::inject_uniform(m, 0.03, r1));
  Stack2D dense(m, mesh::inject_uniform(m, 0.12, r2));
  EXPECT_GT(dense.ident_stats.messages + dense.boundary_stats.messages,
            sparse.ident_stats.messages + sparse.boundary_stats.messages);
}

}  // namespace
}  // namespace mcc::proto
