// Reachability fields: DP correctness against a brute-force path
// enumeration, and the safe==non-faulty equivalence for safe endpoints
// (the structural fact the MCC model rests on; DESIGN.md §3).
#include <gtest/gtest.h>

#include <functional>

#include "core/reachability.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Coord3;

// Brute-force: does a monotone path exist via memoized DFS on raw faults?
bool brute2(const mesh::Mesh2D& m, const LabelField2D& l, Coord2 u, Coord2 d,
            bool safe_only) {
  if (u.x > d.x || u.y > d.y) return false;
  auto usable = [&](Coord2 c) {
    if (c == d) return l.state(c) != NodeState::Faulty;
    return safe_only ? l.safe(c) : l.state(c) != NodeState::Faulty;
  };
  std::function<bool(Coord2)> rec = [&](Coord2 c) -> bool {
    if (!usable(c)) return false;
    if (c == d) return true;
    if (c.x < d.x && rec({c.x + 1, c.y})) return true;
    if (c.y < d.y && rec({c.x, c.y + 1})) return true;
    return false;
  };
  (void)m;
  return rec(u);
}

TEST(ReachField2D, MatchesBruteForceBothFilters) {
  const mesh::Mesh2D m(9, 9);
  for (uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(100 + seed);
    const auto f = mesh::inject_uniform(m, 0.2, rng);
    const LabelField2D l(m, f);
    const Coord2 d{8, 8};
    const ReachField2D full(m, l, d, NodeFilter::NonFaulty);
    const ReachField2D safe(m, l, d, NodeFilter::SafeOnly);
    for (int y = 0; y <= 8; ++y)
      for (int x = 0; x <= 8; ++x) {
        const Coord2 u{x, y};
        EXPECT_EQ(full.feasible(u), brute2(m, l, u, d, false))
            << u << " seed " << seed;
        EXPECT_EQ(safe.feasible(u), brute2(m, l, u, d, true))
            << u << " seed " << seed;
      }
  }
}

TEST(ReachField2D, FaultyDestinationUnreachable) {
  const mesh::Mesh2D m(6, 6);
  mesh::FaultSet2D f(m);
  f.set_faulty({5, 5});
  const LabelField2D l(m, f);
  const ReachField2D r(m, l, {5, 5}, NodeFilter::NonFaulty);
  EXPECT_FALSE(r.feasible({0, 0}));
  EXPECT_FALSE(r.feasible({5, 5}));
}

TEST(ReachField2D, OutOfBoxQueriesAreInfeasible) {
  const mesh::Mesh2D m(8, 8);
  const LabelField2D l(m, mesh::FaultSet2D(m));
  const ReachField2D r(m, l, {4, 4}, NodeFilter::NonFaulty);
  EXPECT_TRUE(r.feasible({0, 0}));
  EXPECT_TRUE(r.feasible({4, 4}));
  EXPECT_FALSE(r.feasible({5, 4}));  // beyond the destination
  EXPECT_FALSE(r.feasible({4, 5}));
}

// The structural theorem: for SAFE s and d, a minimal path through
// non-faulty nodes exists iff one through safe-only nodes exists.
TEST(ReachField2D, SafeEndpointsMakeFiltersEquivalent) {
  const mesh::Mesh2D m(12, 12);
  for (uint64_t seed = 0; seed < 60; ++seed) {
    util::Rng rng(200 + seed);
    const auto f = mesh::inject_uniform(m, 0.25, rng);
    const LabelField2D l(m, f);
    const Coord2 d{11, 11};
    if (!l.safe(d)) continue;
    const ReachField2D full(m, l, d, NodeFilter::NonFaulty);
    const ReachField2D safe(m, l, d, NodeFilter::SafeOnly);
    for (int y = 0; y <= 11; ++y)
      for (int x = 0; x <= 11; ++x) {
        const Coord2 u{x, y};
        if (!l.safe(u)) continue;
        EXPECT_EQ(full.feasible(u), safe.feasible(u))
            << u << " seed " << seed;
      }
  }
}

TEST(ReachField3D, SafeEndpointsMakeFiltersEquivalent) {
  const mesh::Mesh3D m(7, 7, 7);
  for (uint64_t seed = 0; seed < 40; ++seed) {
    util::Rng rng(300 + seed);
    const auto f = mesh::inject_uniform(m, 0.2, rng);
    const LabelField3D l(m, f);
    const Coord3 d{6, 6, 6};
    if (!l.safe(d)) continue;
    const ReachField3D full(m, l, d, NodeFilter::NonFaulty);
    const ReachField3D safe(m, l, d, NodeFilter::SafeOnly);
    for (int z = 0; z <= 6; ++z)
      for (int y = 0; y <= 6; ++y)
        for (int x = 0; x <= 6; ++x) {
          const Coord3 u{x, y, z};
          if (!l.safe(u)) continue;
          EXPECT_EQ(full.feasible(u), safe.feasible(u))
              << u << " seed " << seed;
        }
  }
}

TEST(ReachField3D, PlateBlocksEverything) {
  // Full-cross-section plate: nothing below reaches anything above.
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 0, 7, 0, 7, 4);
  const LabelField3D l(m, f);
  const ReachField3D r(m, l, {7, 7, 7}, NodeFilter::NonFaulty);
  EXPECT_FALSE(r.feasible({0, 0, 0}));
  EXPECT_FALSE(r.feasible({7, 7, 3}));
  EXPECT_TRUE(r.feasible({0, 0, 5}));
}

TEST(ReachField3D, PlateWithHoleIsPassable) {
  const mesh::Mesh3D m(8, 8, 8);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 0, 7, 0, 7, 4);
  f.set_faulty({3, 3, 4}, false);  // open a hole
  const LabelField3D l(m, f);
  const ReachField3D r(m, l, {7, 7, 7}, NodeFilter::NonFaulty);
  EXPECT_TRUE(r.feasible({0, 0, 0}));
  EXPECT_FALSE(r.feasible({4, 4, 0}));  // SE of the hole: can't reach it
  EXPECT_TRUE(r.feasible({3, 3, 0}));
}

TEST(ReachField2D, MonotoneInPrefix) {
  // If u reaches d, so does every predecessor of u on a feasible path;
  // spot-check the DP's internal consistency: feasible(u) implies a
  // feasible positive neighbor (or u == d).
  const mesh::Mesh2D m(10, 10);
  util::Rng rng(400);
  const auto f = mesh::inject_uniform(m, 0.25, rng, {{9, 9}});
  const LabelField2D l(m, f);
  const Coord2 d{9, 9};
  const ReachField2D r(m, l, d, NodeFilter::NonFaulty);
  for (int y = 0; y <= 9; ++y)
    for (int x = 0; x <= 9; ++x) {
      const Coord2 u{x, y};
      if (!r.feasible(u) || u == d) continue;
      const bool via_x = x < 9 && r.feasible({x + 1, y});
      const bool via_y = y < 9 && r.feasible({x, y + 1});
      EXPECT_TRUE(via_x || via_y) << u;
    }
}

}  // namespace
}  // namespace mcc::core
