// Routers: the paper's delivery guarantee — whenever the feasibility check
// passes, EVERY adaptive policy delivers in exactly D(s,d) hops — for the
// oracle-guided (v1), record-guided (v2) and flood-guided routers.
#include <gtest/gtest.h>

#include "core/boundary2d.h"
#include "core/feasibility2d.h"
#include "core/feasibility3d.h"
#include "core/reachability.h"
#include "core/router.h"
#include "mesh/fault_injection.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::core {
namespace {

using mesh::Coord2;
using mesh::Coord3;

void check_path2(const RouteResult2D& r, const LabelField2D& l, Coord2 s,
                 Coord2 d) {
  ASSERT_TRUE(r.delivered) << "failure: " << r.failure;
  ASSERT_EQ(r.path.front(), s);
  ASSERT_EQ(r.path.back(), d);
  ASSERT_EQ(r.hops(), manhattan(s, d));  // minimal
  for (size_t i = 0; i < r.path.size(); ++i) {
    EXPECT_NE(l.state(r.path[i]), NodeState::Faulty) << r.path[i];
    if (i > 0) {
      EXPECT_EQ(manhattan(r.path[i - 1], r.path[i]), 1);
    }
  }
}

void check_path3(const RouteResult3D& r, const LabelField3D& l, Coord3 s,
                 Coord3 d) {
  ASSERT_TRUE(r.delivered) << "failure: " << r.failure;
  ASSERT_EQ(r.path.front(), s);
  ASSERT_EQ(r.path.back(), d);
  ASSERT_EQ(r.hops(), manhattan(s, d));
  for (size_t i = 0; i < r.path.size(); ++i) {
    EXPECT_NE(l.state(r.path[i]), NodeState::Faulty) << r.path[i];
    if (i > 0) {
      EXPECT_EQ(manhattan(r.path[i - 1], r.path[i]), 1);
    }
  }
}

TEST(Router2D, FaultFreeAllPolicies) {
  const mesh::Mesh2D m(10, 10);
  const LabelField2D l(m, mesh::FaultSet2D(m));
  const Coord2 s{0, 0}, d{7, 9};
  const OracleGuidance2D g(m, l, d);
  for (const RoutePolicy p : kAllPolicies) {
    util::Rng rng(1);
    check_path2(route2d(m, s, d, g, p, rng), l, s, d);
  }
}

TEST(Router2D, PoliciesProduceDifferentPaths) {
  const mesh::Mesh2D m(10, 10);
  const LabelField2D l(m, mesh::FaultSet2D(m));
  const Coord2 s{0, 0}, d{9, 9};
  const OracleGuidance2D g(m, l, d);
  util::Rng rng(2);
  const auto xf = route2d(m, s, d, g, RoutePolicy::XFirst, rng);
  const auto yf = route2d(m, s, d, g, RoutePolicy::YFirst, rng);
  const auto alt = route2d(m, s, d, g, RoutePolicy::Alternate, rng);
  EXPECT_NE(xf.path, yf.path);
  EXPECT_NE(alt.path, xf.path);
  // X-first goes straight east first.
  EXPECT_EQ(xf.path[1], (Coord2{1, 0}));
  EXPECT_EQ(yf.path[1], (Coord2{0, 1}));
}

TEST(Router2D, AdaptivityStatsCountChoices) {
  const mesh::Mesh2D m(8, 8);
  const LabelField2D l(m, mesh::FaultSet2D(m));
  const Coord2 s{0, 0}, d{7, 7};
  const OracleGuidance2D g(m, l, d);
  util::Rng rng(3);
  const auto r = route2d(m, s, d, g, RoutePolicy::Random, rng);
  // In a fault-free mesh both directions stay open until an axis is used
  // up; at least half the hops must have been multi-choice.
  EXPECT_GE(r.stats.multi_choice_hops, 7);
  EXPECT_GT(r.stats.candidate_sum, r.hops());
}

using util::SweepParam;

class RouterSweep2D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RouterSweep2D, DeliveryGuaranteeOracleAndRecords) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  const Boundary2D b(m, l, mccs);
  util::Rng prng(seed * 5 + 17);

  int feasible_pairs = 0;
  for (int t = 0; t < pairs * 10 && feasible_pairs < pairs; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    if (!detect2d(m, l, s, d).feasible()) continue;
    ++feasible_pairs;

    const OracleGuidance2D oracle(m, l, d);
    const RecordGuidance2D records(l, mccs, b, d);
    for (const RoutePolicy p : kAllPolicies) {
      util::Rng r1(seed ^ t);
      check_path2(route2d(m, s, d, oracle, p, r1), l, s, d);
      util::Rng r2(seed ^ t ^ 0x9999);
      check_path2(route2d(m, s, d, records, p, r2), l, s, d);
    }
  }
  if (rate <= 0.2) {
    EXPECT_GT(feasible_pairs, pairs / 3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, RouterSweep2D,
    ::testing::Values(SweepParam{10, 0.10, 301, 40},
                      SweepParam{12, 0.15, 302, 40},
                      SweepParam{16, 0.10, 303, 30},
                      SweepParam{16, 0.20, 304, 30},
                      SweepParam{20, 0.15, 305, 25},
                      SweepParam{24, 0.20, 306, 20},
                      SweepParam{32, 0.12, 307, 20},
                      SweepParam{32, 0.25, 308, 15}));

class RouterClustered2D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RouterClustered2D, RecordsSurviveClusteredFaults) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_clustered(
      m, static_cast<int>(rate * size * size), 3, rng);
  const LabelField2D l(m, f);
  const MccSet2D mccs(m, l);
  const Boundary2D b(m, l, mccs);
  util::Rng prng(seed * 11 + 13);

  for (int t = 0; t < pairs * 10; ++t) {
    const auto [s, d] = util::random_strict_pair2d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    if (!detect2d(m, l, s, d).feasible()) continue;
    const RecordGuidance2D records(l, mccs, b, d);
    util::Rng r2(seed ^ t);
    check_path2(route2d(m, s, d, records, RoutePolicy::Random, r2), l, s, d);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, RouterClustered2D,
    ::testing::Values(SweepParam{16, 0.15, 311, 40},
                      SweepParam{16, 0.30, 312, 40},
                      SweepParam{24, 0.20, 313, 25},
                      SweepParam{32, 0.25, 314, 20}));

// The ablation guidance (labels only, no records) must fail sometimes —
// otherwise records carry no information and the experiment E9 is vacuous.
TEST(Router2D, LabelsOnlyGuidanceCanTrapItself) {
  // M at (5..8, 5..8); d above M; a message sent x-first with labels-only
  // guidance walks under M into the forbidden region and gets stuck.
  const mesh::Mesh2D m(12, 12);
  mesh::FaultSet2D f(m);
  for (int x = 5; x <= 8; ++x)
    for (int y = 5; y <= 8; ++y) f.set_faulty({x, y});
  const LabelField2D l(m, f);
  const Coord2 s{0, 0}, d{6, 10};
  ASSERT_TRUE(detect2d(m, l, s, d).feasible());
  const LabelsOnlyGuidance2D g(l, d);
  util::Rng rng(4);
  const auto r = route2d(m, s, d, g, RoutePolicy::XFirst, rng);
  EXPECT_FALSE(r.delivered);
}

TEST(Router3D, FaultFreeAllPolicies) {
  const mesh::Mesh3D m(8, 8, 8);
  const LabelField3D l(m, mesh::FaultSet3D(m));
  const Coord3 s{0, 0, 0}, d{5, 7, 6};
  const OracleGuidance3D g(m, l, d);
  for (const RoutePolicy p : kAllPolicies) {
    util::Rng rng(5);
    check_path3(route3d(m, s, d, g, p, rng), l, s, d);
  }
}

class RouterSweep3D : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RouterSweep3D, DeliveryGuaranteeOracleAndFlood) {
  const auto [size, rate, seed, pairs] = GetParam();
  const mesh::Mesh3D m(size, size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const LabelField3D l(m, f);
  util::Rng prng(seed * 5 + 23);

  int feasible_pairs = 0;
  for (int t = 0; t < pairs * 10 && feasible_pairs < pairs; ++t) {
    const auto [s, d] = util::random_strict_pair3d(m, prng);
    if (!l.safe(s) || !l.safe(d)) continue;
    if (!detect3d(m, l, s, d).feasible()) continue;
    ++feasible_pairs;

    const OracleGuidance3D oracle(m, l, d);
    const FloodGuidance3D flood(m, l, d);
    for (const RoutePolicy p : kAllPolicies) {
      util::Rng r1(seed ^ t);
      check_path3(route3d(m, s, d, oracle, p, r1), l, s, d);
    }
    util::Rng r2(seed ^ t ^ 0x5555);
    check_path3(route3d(m, s, d, flood, RoutePolicy::Random, r2), l, s, d);
    util::Rng r3(seed ^ t ^ 0x3333);
    check_path3(route3d(m, s, d, flood, RoutePolicy::XFirst, r3), l, s, d);
  }
  if (rate <= 0.15) {
    EXPECT_GT(feasible_pairs, pairs / 3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, RouterSweep3D,
    ::testing::Values(SweepParam{6, 0.10, 321, 30},
                      SweepParam{8, 0.10, 322, 25},
                      SweepParam{8, 0.20, 323, 25},
                      SweepParam{10, 0.15, 324, 20},
                      SweepParam{10, 0.25, 325, 15},
                      SweepParam{12, 0.10, 326, 15}));

TEST(Router3D, PlateWithHoleThreadsTheNeedle) {
  const mesh::Mesh3D m(9, 9, 9);
  mesh::FaultSet3D f(m);
  mesh::add_plate_z(f, m, 0, 8, 0, 8, 4);
  f.set_faulty({4, 4, 4}, false);
  const LabelField3D l(m, f);
  const Coord3 s{0, 0, 0}, d{8, 8, 8};
  ASSERT_TRUE(detect3d(m, l, s, d).feasible());
  const OracleGuidance3D g(m, l, d);
  for (const RoutePolicy p : kAllPolicies) {
    util::Rng rng(6);
    const auto r = route3d(m, s, d, g, p, rng);
    check_path3(r, l, s, d);
    // Every path must pass through the hole.
    EXPECT_NE(std::find(r.path.begin(), r.path.end(), Coord3{4, 4, 4}),
              r.path.end());
  }
}

}  // namespace
}  // namespace mcc::core
