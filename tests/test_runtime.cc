// Dynamic-fault runtime: the randomized differential suite proving that
// incremental maintenance (DynamicModel2D/3D driving the core event hooks)
// is equivalent to a full rebuild after EVERY event of randomized churn
// schedules — labels bit-identical, region partitions identical up to the
// stable-id bijection, boundary records identical per node, feasibility
// and routed paths identical — plus the GuidanceCache contract (epoch
// isolation, LRU bounds, concurrent readers: the CI TSan job runs the
// GuidanceCacheConcurrent suite), the cache-vs-nocache bit-identity of the
// wormhole's Model mode, mid-run wormhole fault/repair events, the proto
// record-delta replica, and the churn-schedule sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/model.h"
#include "mesh/fault_injection.h"
#include "proto/boundary_delta.h"
#include "runtime/dynamic_model.h"
#include "runtime/timeline.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/dynamic_routing.h"
#include "sim/wormhole/network.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc {
namespace {

using core::MccModel2D;
using core::MccModel3D;
using mesh::Coord2;
using mesh::Coord3;
using runtime::DynamicModel2D;
using runtime::DynamicModel3D;

// ---------------------------------------------------------------------------
// Differential equivalence checkers

// Maps each live region id to the row-major index of its smallest cell —
// the canonical name under which incrementally-maintained (stable-id) and
// freshly-built (scan-order-id) regions are matched.
template <class MeshT, class SetT>
std::map<size_t, int> region_reps(const MeshT& mesh, const SetT& set) {
  std::map<size_t, int> reps;
  for (const auto& r : set.regions()) {
    if (r.id < 0) continue;  // tombstone
    size_t best = ~size_t{0};
    for (const auto c : r.cells) best = std::min(best, mesh.index(c));
    reps[best] = r.id;
  }
  return reps;
}

template <class CellT>
std::vector<CellT> sorted_cells(std::vector<CellT> cells, auto&& index) {
  std::sort(cells.begin(), cells.end(),
            [&](const CellT& a, const CellT& b) { return index(a) < index(b); });
  return cells;
}

void expect_equivalent2d(const mesh::Mesh2D& mesh, const DynamicModel2D& dyn,
                         uint64_t seed, const std::string& ctx) {
  const MccModel2D fresh(mesh, dyn.faults());
  for (const bool fx : {false, true})
    for (const bool fy : {false, true}) {
      const mesh::Octant2 o{fx, fy};
      const core::OctantModel2D& dm = dyn.octant(o);
      const core::OctantModel2D& fm = fresh.octant(o);
      const std::string octx = ctx + " octant " + std::to_string(o.id());

      // Labels: bit-identical grids and counters.
      ASSERT_TRUE(dm.labels.grid() == fm.labels.grid()) << octx;
      ASSERT_EQ(dm.labels.useless_count(), fm.labels.useless_count()) << octx;
      ASSERT_EQ(dm.labels.cant_reach_count(), fm.labels.cant_reach_count())
          << octx;
      ASSERT_EQ(dm.labels.ambiguous_count(), fm.labels.ambiguous_count())
          << octx;

      // Regions: identical partition up to the stable-id bijection.
      const auto dyn_reps = region_reps(mesh, dm.mccs);
      const auto fresh_reps = region_reps(mesh, fm.mccs);
      ASSERT_EQ(dyn_reps.size(), fresh_reps.size()) << octx;
      std::map<int, int> to_fresh;
      for (const auto& [rep, did] : dyn_reps) {
        const auto it = fresh_reps.find(rep);
        ASSERT_TRUE(it != fresh_reps.end()) << octx;
        to_fresh[did] = it->second;

        const core::MccRegion2D& dr = dm.mccs.region(did);
        const core::MccRegion2D& fr = fm.mccs.region(it->second);
        ASSERT_EQ(dr.x0, fr.x0) << octx;
        ASSERT_EQ(dr.x1, fr.x1) << octx;
        ASSERT_EQ(dr.y0, fr.y0) << octx;
        ASSERT_EQ(dr.y1, fr.y1) << octx;
        ASSERT_EQ(dr.bot, fr.bot) << octx;
        ASSERT_EQ(dr.top, fr.top) << octx;
        ASSERT_EQ(dr.left, fr.left) << octx;
        ASSERT_EQ(dr.right, fr.right) << octx;
        ASSERT_EQ(dr.faulty_cells, fr.faulty_cells) << octx;
        ASSERT_EQ(dr.healthy_cells, fr.healthy_cells) << octx;
        const auto idx = [&](Coord2 c) { return mesh.index(c); };
        ASSERT_EQ(sorted_cells(dr.cells, idx), sorted_cells(fr.cells, idx))
            << octx;
      }
      for (size_t i = 0; i < mesh.node_count(); ++i) {
        const Coord2 c = mesh.coord(i);
        const int did = dm.mccs.region_at(c);
        const int fid = fm.mccs.region_at(c);
        if (did < 0) {
          ASSERT_EQ(fid, -1) << octx << " cell " << c.x << "," << c.y;
        } else {
          ASSERT_EQ(to_fresh.at(did), fid) << octx << " cell " << c.x << ","
                                           << c.y;
        }
      }

      // Walls: identical walks and (mapped) merge chains per live region.
      for (const auto& [did, fid] : to_fresh) {
        for (int pass = 0; pass < 2; ++pass) {
          const core::Wall2D& dw =
              pass == 0 ? dm.boundary.y_wall(did) : dm.boundary.x_wall(did);
          const core::Wall2D& fw =
              pass == 0 ? fm.boundary.y_wall(fid) : fm.boundary.x_wall(fid);
          ASSERT_EQ(dw.exists, fw.exists) << octx << " wall of " << did;
          ASSERT_EQ(dw.complete, fw.complete) << octx;
          ASSERT_EQ(dw.path.size(), fw.path.size()) << octx;
          for (size_t k = 0; k < dw.path.size(); ++k)
            ASSERT_TRUE(dw.path[k] == fw.path[k]) << octx;
          ASSERT_EQ(dw.chain.size(), fw.chain.size()) << octx;
          for (size_t k = 0; k < dw.chain.size(); ++k)
            ASSERT_EQ(to_fresh.at(dw.chain[k]), fw.chain[k]) << octx;
        }
      }

      // Records: identical per-node multisets under the id bijection.
      ASSERT_EQ(dm.boundary.record_count(), fm.boundary.record_count())
          << octx;
      ASSERT_EQ(dm.boundary.nodes_with_records(),
                fm.boundary.nodes_with_records())
          << octx;
      using CanonRec = std::pair<std::pair<int, int>, std::vector<int>>;
      for (size_t i = 0; i < mesh.node_count(); ++i) {
        const Coord2 c = mesh.coord(i);
        auto canon = [&](const std::vector<core::Record2D>& recs,
                         bool map_ids) {
          std::vector<CanonRec> out;
          for (const core::Record2D& r : recs) {
            std::vector<int> chain = *r.chain;
            int owner = r.owner;
            if (map_ids) {
              owner = to_fresh.at(owner);
              for (int& id : chain) id = to_fresh.at(id);
            }
            out.push_back({{owner, static_cast<int>(r.guard)}, chain});
          }
          std::sort(out.begin(), out.end());
          return out;
        };
        ASSERT_EQ(canon(dm.boundary.records_at(c), true),
                  canon(fm.boundary.records_at(c), false))
            << octx << " records at " << c.x << "," << c.y;
      }
    }

  // Feasibility + routed paths over arbitrary-orientation pairs.
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (int t = 0; t < 24; ++t) {
    const Coord2 s{rng.uniform_int(0, mesh.nx() - 1),
                   rng.uniform_int(0, mesh.ny() - 1)};
    const Coord2 d{rng.uniform_int(0, mesh.nx() - 1),
                   rng.uniform_int(0, mesh.ny() - 1)};
    const auto df = dyn.feasible(s, d);
    const auto ff = fresh.feasible(s, d);
    ASSERT_EQ(df.feasible, ff.feasible) << ctx;
    ASSERT_EQ(static_cast<int>(df.basis), static_cast<int>(ff.basis)) << ctx;
    if (!df.feasible) continue;
    const auto dr = dyn.route(s, d, core::RouterKind::Records,
                              core::RoutePolicy::Balanced, seed + t);
    const auto fr = fresh.route(s, d, core::RouterKind::Records,
                                core::RoutePolicy::Balanced, seed + t);
    ASSERT_EQ(dr.delivered, fr.delivered) << ctx;
    ASSERT_EQ(dr.path.size(), fr.path.size()) << ctx;
    for (size_t k = 0; k < dr.path.size(); ++k)
      ASSERT_TRUE(dr.path[k] == fr.path[k]) << ctx;
  }
}

void expect_equivalent3d(const mesh::Mesh3D& mesh, const DynamicModel3D& dyn,
                         uint64_t seed, const std::string& ctx) {
  const MccModel3D fresh(mesh, dyn.faults());
  for (int id = 0; id < 8; ++id) {
    const mesh::Octant3 o{(id & 1) != 0, (id & 2) != 0, (id & 4) != 0};
    const core::OctantModel3D& dm = dyn.octant(o);
    const core::OctantModel3D& fm = fresh.octant(o);
    const std::string octx = ctx + " octant " + std::to_string(id);

    ASSERT_TRUE(dm.labels.grid() == fm.labels.grid()) << octx;
    ASSERT_EQ(dm.labels.useless_count(), fm.labels.useless_count()) << octx;
    ASSERT_EQ(dm.labels.cant_reach_count(), fm.labels.cant_reach_count())
        << octx;

    const auto dyn_reps = region_reps(mesh, dm.mccs);
    const auto fresh_reps = region_reps(mesh, fm.mccs);
    ASSERT_EQ(dyn_reps.size(), fresh_reps.size()) << octx;
    std::map<int, int> to_fresh;
    for (const auto& [rep, did] : dyn_reps) {
      const auto it = fresh_reps.find(rep);
      ASSERT_TRUE(it != fresh_reps.end()) << octx;
      to_fresh[did] = it->second;

      const core::MccRegion3D& dr = dm.mccs.region(did);
      const core::MccRegion3D& fr = fm.mccs.region(it->second);
      ASSERT_EQ(dr.x0, fr.x0) << octx;
      ASSERT_EQ(dr.x1, fr.x1) << octx;
      ASSERT_EQ(dr.y0, fr.y0) << octx;
      ASSERT_EQ(dr.y1, fr.y1) << octx;
      ASSERT_EQ(dr.z0, fr.z0) << octx;
      ASSERT_EQ(dr.z1, fr.z1) << octx;
      ASSERT_TRUE(dr.z_span == fr.z_span) << octx;
      ASSERT_TRUE(dr.y_span == fr.y_span) << octx;
      ASSERT_TRUE(dr.x_span == fr.x_span) << octx;
      ASSERT_EQ(dr.faulty_cells, fr.faulty_cells) << octx;
      ASSERT_EQ(dr.healthy_cells, fr.healthy_cells) << octx;
      const auto idx = [&](Coord3 c) { return mesh.index(c); };
      ASSERT_EQ(sorted_cells(dr.cells, idx), sorted_cells(fr.cells, idx))
          << octx;
    }
    for (size_t i = 0; i < mesh.node_count(); ++i) {
      const Coord3 c = mesh.coord(i);
      const int did = dm.mccs.region_at(c);
      const int fid = fm.mccs.region_at(c);
      if (did < 0) {
        ASSERT_EQ(fid, -1) << octx;
      } else {
        ASSERT_EQ(to_fresh.at(did), fid) << octx;
      }
    }
  }

  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (int t = 0; t < 16; ++t) {
    const Coord3 s{rng.uniform_int(0, mesh.nx() - 1),
                   rng.uniform_int(0, mesh.ny() - 1),
                   rng.uniform_int(0, mesh.nz() - 1)};
    const Coord3 d{rng.uniform_int(0, mesh.nx() - 1),
                   rng.uniform_int(0, mesh.ny() - 1),
                   rng.uniform_int(0, mesh.nz() - 1)};
    const auto df = dyn.feasible(s, d);
    const auto ff = fresh.feasible(s, d);
    ASSERT_EQ(df.feasible, ff.feasible) << ctx;
    ASSERT_EQ(static_cast<int>(df.basis), static_cast<int>(ff.basis)) << ctx;
    if (!df.feasible) continue;
    const auto dr = dyn.route(s, d, core::RouterKind::Oracle,
                              core::RoutePolicy::Random, seed + t);
    const auto fr = fresh.route(s, d, core::RouterKind::Oracle,
                                core::RoutePolicy::Random, seed + t);
    ASSERT_EQ(dr.delivered, fr.delivered) << ctx;
    ASSERT_EQ(dr.path.size(), fr.path.size()) << ctx;
    for (size_t k = 0; k < dr.path.size(); ++k)
      ASSERT_TRUE(dr.path[k] == fr.path[k]) << ctx;
  }
}

// ---------------------------------------------------------------------------
// Randomized differential churn (the acceptance gate: 200+ schedules)

TEST(DynamicRuntime2D, DifferentialChurn) {
  int schedules = 0;
  for (const int size : {8, 12, 16})
    for (const double rate : {0.04, 0.08, 0.14})
      for (int rep = 0; rep < 14; ++rep) {
        const uint64_t seed =
            0x2D00 + static_cast<uint64_t>(size) * 1000 +
            static_cast<uint64_t>(rate * 1000) * 131 + static_cast<uint64_t>(rep);
        util::Rng rng(seed);
        const mesh::Mesh2D mesh(size, size);
        const mesh::FaultSet2D initial =
            mesh::inject_uniform(mesh, rate, rng);
        DynamicModel2D dyn(mesh, initial);

        util::ChurnParams p;
        p.rate = 0.02;
        p.horizon = 400;
        p.repair_min = 40;
        p.repair_max = 200;
        const auto timeline =
            runtime::FaultTimeline2D::sample(mesh, initial, rng, p);
        ++schedules;

        int ev = 0;
        for (const auto& e : timeline.events()) {
          const auto rep_before = dyn.epoch();
          if (e.repair)
            dyn.repair(e.node);
          else
            dyn.fail(e.node);
          ASSERT_EQ(dyn.epoch(), rep_before + 1);
          expect_equivalent2d(mesh, dyn, seed + static_cast<uint64_t>(ev),
                              "seed " + std::to_string(seed) + " event " +
                                  std::to_string(ev));
          if (HasFatalFailure()) return;
          ++ev;
        }
      }
  EXPECT_GE(schedules, 126);
}

TEST(DynamicRuntime3D, DifferentialChurn) {
  int schedules = 0;
  for (const int size : {5, 6, 7})
    for (const double rate : {0.04, 0.08})
      for (int rep = 0; rep < 17; ++rep) {
        const uint64_t seed =
            0x3D00 + static_cast<uint64_t>(size) * 1000 +
            static_cast<uint64_t>(rate * 1000) * 131 + static_cast<uint64_t>(rep);
        util::Rng rng(seed);
        const mesh::Mesh3D mesh(size, size, size);
        const mesh::FaultSet3D initial =
            mesh::inject_uniform(mesh, rate, rng);
        DynamicModel3D dyn(mesh, initial);

        util::ChurnParams p;
        p.rate = 0.03;
        p.horizon = 300;
        p.repair_min = 30;
        p.repair_max = 150;
        const auto timeline =
            runtime::FaultTimeline3D::sample(mesh, initial, rng, p);
        ++schedules;

        int ev = 0;
        for (const auto& e : timeline.events()) {
          if (e.repair)
            dyn.repair(e.node);
          else
            dyn.fail(e.node);
          expect_equivalent3d(mesh, dyn, seed + static_cast<uint64_t>(ev),
                              "seed " + std::to_string(seed) + " event " +
                                  std::to_string(ev));
          if (HasFatalFailure()) return;
          ++ev;
        }
      }
  EXPECT_GE(schedules, 102);
}

// Dense interlocked patterns push the label fixpoint into its ambiguous
// (doubly-blocked) regime, where the hooks must take the constructor-
// equivalent fallback — the differential contract must hold there too.
TEST(DynamicRuntime2D, DenseChurnExercisesFallback) {
  for (int rep = 0; rep < 10; ++rep) {
    const uint64_t seed = 0xD05E + static_cast<uint64_t>(rep);
    util::Rng rng(seed);
    const mesh::Mesh2D mesh(10, 10);
    const mesh::FaultSet2D initial = mesh::inject_uniform(mesh, 0.25, rng);
    DynamicModel2D dyn(mesh, initial);

    util::ChurnParams p;
    p.rate = 0.05;
    p.horizon = 300;
    p.repair_min = 20;
    p.repair_max = 120;
    const auto timeline =
        runtime::FaultTimeline2D::sample(mesh, initial, rng, p);
    int ev = 0;
    for (const auto& e : timeline.events()) {
      if (e.repair)
        dyn.repair(e.node);
      else
        dyn.fail(e.node);
      expect_equivalent2d(mesh, dyn, seed + static_cast<uint64_t>(ev),
                          "dense seed " + std::to_string(seed) + " event " +
                              std::to_string(ev));
      if (HasFatalFailure()) return;
      ++ev;
    }
  }
}

TEST(DynamicRuntime2D, NoOpEventsDoNotBumpEpoch) {
  const mesh::Mesh2D mesh(8, 8);
  mesh::FaultSet2D f(mesh);
  f.set_faulty({3, 3});
  DynamicModel2D dyn(mesh, f);
  const uint64_t e0 = dyn.epoch();
  EXPECT_EQ(dyn.fail({3, 3}).epoch, 0u);       // already faulty
  EXPECT_EQ(dyn.repair({5, 5}).epoch, 0u);     // healthy
  EXPECT_EQ(dyn.epoch(), e0);
  EXPECT_NE(dyn.repair({3, 3}).epoch, 0u);
  EXPECT_EQ(dyn.epoch(), e0 + 1);
}

TEST(DynamicRuntime2D, EventReportNamesAffectedStructures) {
  const mesh::Mesh2D mesh(12, 12);
  mesh::FaultSet2D f(mesh);
  f.set_faulty({4, 4});
  f.set_faulty({6, 4});
  DynamicModel2D dyn(mesh, f);
  // Bridging the gap merges two single-cell regions into one.
  const auto rep = dyn.fail({5, 4});
  ASSERT_NE(rep.epoch, 0u);
  const auto& delta = rep.octants[0];  // canonical (no-flip) quadrant
  EXPECT_GE(delta.relabeled.size(), 1u);
  EXPECT_EQ(delta.regions.removed.size(), 2u);
  EXPECT_EQ(delta.regions.added.size(), 1u);
  EXPECT_GE(rep.walls_rebuilt(), 1u);

  // Un-bridging splits it again.
  const auto rep2 = dyn.repair({5, 4});
  ASSERT_NE(rep2.epoch, 0u);
  EXPECT_EQ(rep2.octants[0].regions.removed.size(), 1u);
  EXPECT_EQ(rep2.octants[0].regions.added.size(), 2u);
}

// ---------------------------------------------------------------------------
// GuidanceCache

TEST(GuidanceCache, HitMissAndEpochIsolation) {
  const mesh::Mesh2D mesh(8, 8);
  const mesh::FaultSet2D faults(mesh);
  const core::LabelField2D labels(mesh, faults);
  runtime::GuidanceCache2D cache(64, 4);

  int builds = 0;
  auto build = [&] {
    ++builds;
    return core::ReachField2D(mesh, labels, {7, 7},
                              core::NodeFilter::SafeOnly);
  };
  const auto f1 = cache.get_or_build(1, 0, mesh.index({7, 7}), build);
  const auto f2 = cache.get_or_build(1, 0, mesh.index({7, 7}), build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(f1.get(), f2.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // A new epoch can never be served the old field.
  const auto f3 = cache.get_or_build(2, 0, mesh.index({7, 7}), build);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(f3.get(), f1.get());

  // Distinct octants and destinations are distinct entries.
  cache.get_or_build(2, 1, mesh.index({7, 7}), build);
  cache.get_or_build(2, 0, mesh.index({6, 6}), build);
  EXPECT_EQ(builds, 4);

  // clear() (what the model does on every event) drops everything.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(GuidanceCache, LruEvictionRespectsCapacity) {
  const mesh::Mesh2D mesh(6, 6);
  const mesh::FaultSet2D faults(mesh);
  const core::LabelField2D labels(mesh, faults);
  runtime::GuidanceCache2D cache(8, 2);  // 4 entries per shard

  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y)
      cache.get_or_build(1, 0, mesh.index({x, y}), [&] {
        return core::ReachField2D(mesh, labels, {x, y},
                                  core::NodeFilter::SafeOnly);
      });
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(GuidanceCacheConcurrent, SharedReadersAreRaceFree) {
  const mesh::Mesh2D mesh(12, 12);
  util::Rng seed_rng(99);
  const mesh::FaultSet2D faults = mesh::inject_uniform(mesh, 0.08, seed_rng);
  const core::LabelField2D labels(mesh, faults);
  runtime::GuidanceCache2D cache(32, 4);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        const Coord2 d{rng.uniform_int(4, mesh.nx() - 1),
                       rng.uniform_int(4, mesh.ny() - 1)};
        const uint64_t epoch = 1 + (i % 3);
        const auto field =
            cache.get_or_build(epoch, 0, mesh.index(d), [&] {
              return core::ReachField2D(mesh, labels, d,
                                        core::NodeFilter::SafeOnly);
            });
        // Every served field must be the right one for its key.
        if (!(field->destination() == d)) mismatches.fetch_add(1);
        if (field->feasible(d) !=
            (labels.state(d) != core::NodeState::Faulty))
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses,
            static_cast<uint64_t>(kThreads) * kIters);
}

// Regression for the build-under-shard-lock bug: two misses for DISTINCT
// destinations that stripe to the same shard must build concurrently.
// Each build callback rendezvouses with the other; if one build held the
// shard lock for its whole duration (the old behaviour), the second build
// could never start and the rendezvous would time out.
TEST(GuidanceCacheConcurrent, DistinctDestMissesOnOneShardOverlap) {
  const mesh::Mesh2D mesh(8, 8);
  const mesh::FaultSet2D faults(mesh);
  const core::LabelField2D labels(mesh, faults);
  runtime::GuidanceCache2D cache(16, 1);  // one shard: every key collides

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::atomic<bool> overlapped{true};
  const auto rendezvous = [&] {
    std::unique_lock<std::mutex> lk(mu);
    ++arrived;
    cv.notify_all();
    if (!cv.wait_for(lk, std::chrono::seconds(20),
                     [&] { return arrived >= 2; }))
      overlapped.store(false);
  };

  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      const Coord2 d{t, t};  // distinct destination per thread
      cache.get_or_build(1, 0, mesh.index(d), [&] {
        rendezvous();
        return core::ReachField2D(mesh, labels, d,
                                  core::NodeFilter::SafeOnly);
      });
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(overlapped.load())
      << "distinct-dest builds on one shard were serialized";
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

// Concurrent misses of the SAME key must deduplicate to one build and
// all receive the same field.
TEST(GuidanceCacheConcurrent, SameKeyMissesDeduplicateToOneBuild) {
  const mesh::Mesh2D mesh(8, 8);
  const mesh::FaultSet2D faults(mesh);
  const core::LabelField2D labels(mesh, faults);
  runtime::GuidanceCache2D cache(16, 1);

  constexpr int kThreads = 6;
  std::atomic<int> builds{0};
  std::atomic<int> started{0};
  std::vector<std::shared_ptr<const core::ReachField2D>> got(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      started.fetch_add(1);
      // Crowd the start so several threads race the same miss.
      while (started.load() < kThreads) std::this_thread::yield();
      got[t] = cache.get_or_build(1, 0, mesh.index({5, 5}), [&] {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return core::ReachField2D(mesh, labels, {5, 5},
                                  core::NodeFilter::SafeOnly);
      });
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr);
    EXPECT_EQ(got[t].get(), got[0].get());
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(st.misses, 1u);
}

// ---------------------------------------------------------------------------
// Wormhole: cached Model mode must be bit-identical to the per-hop sweep

TEST(WormholeModelCache, CachedAndNocacheRunsBitIdentical) {
  const mesh::Mesh3D mesh(8, 8, 8);
  util::Rng rng(404);
  const mesh::FaultSet3D faults = mesh::inject_clustered(mesh, 24, 3, rng);

  sim::wh::Config cfg;
  sim::wh::LoadPoint load;
  load.rate = 0.02;
  load.warmup = 200;
  load.measure = 600;
  load.drain = 20000;

  sim::wh::MccRouting3D cached(mesh, faults, sim::wh::GuidanceMode::Model,
                               true);
  sim::wh::MccRouting3D nocache(mesh, faults, sim::wh::GuidanceMode::Model,
                                false);
  const auto a = sim::wh::run_load_point3d(
      mesh, faults, cached, sim::wh::Pattern::Uniform, cfg,
      core::RoutePolicy::Random, load, 7);
  const auto b = sim::wh::run_load_point3d(
      mesh, faults, nocache, sim::wh::Pattern::Uniform, cfg,
      core::RoutePolicy::Random, load, 7);

  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.offered_flits, b.offered_flits);
  EXPECT_EQ(a.accepted_flits, b.accepted_flits);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.filtered, b.filtered);
  EXPECT_EQ(a.wedged_head_cycles, b.wedged_head_cycles);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
  EXPECT_TRUE(a.drained);
  // The cached run must actually have exercised the cache.
  EXPECT_GT(cached.cache().stats().hits, 0u);
  EXPECT_EQ(nocache.cache().stats().hits + nocache.cache().stats().misses,
            0u);
}

// ---------------------------------------------------------------------------
// Wormhole churn: mid-run fault/repair events

TEST(WormholeDynamic, ChurnRunDrainsCleanAndDeterministic) {
  const mesh::Mesh3D mesh(6, 6, 6);
  util::Rng rng(777);
  const mesh::FaultSet3D initial = mesh::inject_uniform(mesh, 0.03, rng);

  util::ChurnParams p;
  p.rate = 0.01;
  p.horizon = 700;
  p.repair_min = 60;
  p.repair_max = 300;

  sim::wh::Config cfg;
  sim::wh::LoadPoint load;
  load.rate = 0.02;
  load.warmup = 100;
  load.measure = 600;
  load.drain = 20000;

  auto run_once = [&] {
    util::Rng trng(778);
    runtime::DynamicModel3D model(mesh, initial);
    sim::wh::DynamicMccRouting3D routing(model);
    const auto timeline =
        runtime::FaultTimeline3D::sample(mesh, initial, trng, p);
    return sim::wh::run_churn_load_point3d(model, routing,
                                           sim::wh::Pattern::Uniform, cfg,
                                           core::RoutePolicy::Random, load,
                                           timeline, 42);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();

  EXPECT_GT(r1.fault_events, 0u);
  EXPECT_GT(r1.sim.delivered_packets, 0u);
  EXPECT_EQ(r1.sim.violations, 0u);
  EXPECT_TRUE(r1.sim.drained);
  EXPECT_FALSE(r1.sim.deadlocked);
  EXPECT_GT(r1.cache.hits, 0u);

  // Deterministic given identical seeds/timeline.
  EXPECT_EQ(r1.sim.delivered_packets, r2.sim.delivered_packets);
  EXPECT_EQ(r1.sim.avg_latency, r2.sim.avg_latency);
  EXPECT_EQ(r1.dropped_packets, r2.dropped_packets);
  EXPECT_EQ(r1.fault_events, r2.fault_events);
  EXPECT_EQ(r1.repair_events, r2.repair_events);
}

TEST(WormholeDynamic, CreditConservationHoldsAcrossEvents) {
  const mesh::Mesh2D mesh(8, 8);
  const mesh::FaultSet2D faults(mesh);
  runtime::DynamicModel2D model(mesh, faults);
  sim::wh::DynamicMccRouting2D routing(model);
  sim::wh::Config cfg;
  cfg.drop_infeasible = true;
  sim::wh::Network2D net(mesh, model.faults(), routing, cfg,
                         core::RoutePolicy::Random, 5);

  util::Rng rng(55);
  std::string err;
  auto inject_some = [&] {
    for (int k = 0; k < 6; ++k) {
      const Coord2 s{rng.uniform_int(0, 7), rng.uniform_int(0, 7)};
      const Coord2 d{rng.uniform_int(0, 7), rng.uniform_int(0, 7)};
      if (!(s == d) && routing.feasible(s, d)) net.inject(s, d);
    }
  };
  const Coord2 victims[] = {{3, 3}, {4, 2}, {5, 5}};
  for (const Coord2 v : victims) {
    inject_some();
    for (int c = 0; c < 12; ++c) {
      net.step();
      ASSERT_TRUE(net.check_credits(&err)) << err;
    }
    model.fail(v);
    net.apply_fault(v);
    ASSERT_TRUE(net.check_credits(&err)) << "after fault: " << err;
    for (int c = 0; c < 12; ++c) {
      net.step();
      ASSERT_TRUE(net.check_credits(&err)) << err;
    }
    model.repair(v);
    net.apply_repair(v);
    ASSERT_TRUE(net.check_credits(&err)) << "after repair: " << err;
  }
  for (int c = 0; c < 3000 && !net.idle(); ++c) {
    net.step();
    ASSERT_TRUE(net.check_credits(&err)) << err;
  }
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.stats().violations.size(), 0u);
}

// Regression: a worm whose tail has already left a node keeps flits
// buffered downstream of it and is (correctly) NOT flushed when that node
// dies. Draining those flits must not return credits into the dead node's
// cleared state, and a repair must re-debit them against the revived
// node's fresh counters instead of granting the full buffer depth. Both
// variants — fault-then-drain and fault+repair-then-drain — are swept
// over every strike cycle of the worm's transit.
TEST(WormholeDynamic, SurvivingDownstreamFlitsAcrossFaultAndRepair) {
  const mesh::Mesh2D mesh(5, 1);
  const mesh::FaultSet2D none(mesh);
  const Coord2 victim{2, 0};
  sim::wh::Config cfg;
  cfg.packet_size = 6;
  cfg.buffer_depth = 8;
  cfg.drop_infeasible = true;

  std::string err;
  for (const bool repair : {false, true}) {
    for (int k = 1; k <= 20; ++k) {
      runtime::DynamicModel2D model(mesh, none);
      sim::wh::DynamicMccRouting2D routing(model);
      sim::wh::Network2D net(mesh, model.faults(), routing, cfg,
                             core::RoutePolicy::XFirst, 1);
      ASSERT_TRUE(routing.feasible({0, 0}, {4, 0}));
      net.inject({0, 0}, {4, 0});
      for (int c = 0; c < k; ++c) net.step();

      model.fail(victim);
      net.apply_fault(victim);
      ASSERT_TRUE(net.check_credits(&err)) << "k=" << k << " fault: " << err;
      if (repair) {
        model.repair(victim);
        net.apply_repair(victim);
        ASSERT_TRUE(net.check_credits(&err))
            << "k=" << k << " repair: " << err;
      }

      for (int c = 0; c < 200 && !net.idle(); ++c) {
        net.step();
        ASSERT_TRUE(net.check_credits(&err))
            << "k=" << k << " repair=" << repair << ": " << err;
      }
      EXPECT_TRUE(net.idle()) << "k=" << k << " repair=" << repair;
      EXPECT_EQ(net.stats().violations.size(), 0u) << "k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Proto: record deltas keep a replica bit-equal to the authoritative store

TEST(BoundaryDelta, ReplicaStaysConsistentAcrossChurn) {
  const uint64_t seed = 0xBDE1;
  util::Rng rng(seed);
  const mesh::Mesh2D mesh(14, 14);
  const mesh::FaultSet2D initial = mesh::inject_uniform(mesh, 0.08, rng);
  DynamicModel2D dyn(mesh, initial);

  // Replicate the canonical (no-flip) quadrant's record store.
  const mesh::Octant2 canon{false, false};
  proto::RecordReplica2D replica(mesh);
  replica.snapshot(dyn.octant(canon).boundary);

  util::ChurnParams p;
  p.rate = 0.03;
  p.horizon = 400;
  p.repair_min = 30;
  p.repair_max = 150;
  const auto timeline = runtime::FaultTimeline2D::sample(mesh, initial, rng, p);
  ASSERT_FALSE(timeline.events().empty());

  size_t total_payload = 0;
  for (const auto& e : timeline.events()) {
    const auto rep = e.repair ? dyn.repair(e.node) : dyn.fail(e.node);
    if (rep.epoch == 0) continue;
    const auto delta = proto::make_boundary_delta(
        dyn.octant(canon).boundary, rep.octants[canon.id()].boundary);
    total_payload += delta.payload_ints();
    replica.apply(delta);

    // Replica == authoritative, node by node (order-insensitive).
    const auto& authoritative = dyn.octant(canon).boundary;
    ASSERT_EQ(replica.record_count(), authoritative.record_count());
    for (size_t i = 0; i < mesh.node_count(); ++i) {
      const Coord2 c = mesh.coord(i);
      auto canon_auth = [&] {
        std::vector<std::pair<std::pair<int, int>, std::vector<int>>> out;
        for (const core::Record2D& r : authoritative.records_at(c))
          out.push_back({{r.owner, static_cast<int>(r.guard)}, *r.chain});
        std::sort(out.begin(), out.end());
        return out;
      }();
      auto canon_rep = [&] {
        std::vector<std::pair<std::pair<int, int>, std::vector<int>>> out;
        for (const auto& r : replica.records_at(c))
          out.push_back({{r.owner, static_cast<int>(r.guard)}, r.chain});
        std::sort(out.begin(), out.end());
        return out;
      }();
      ASSERT_EQ(canon_rep, canon_auth)
          << "node " << c.x << "," << c.y << " after event at " << e.node.x
          << "," << e.node.y;
    }
  }
  // Deltas must be incremental: far below re-broadcasting every record.
  EXPECT_GT(total_payload, 0u);
}

// ---------------------------------------------------------------------------
// Churn sampler properties

TEST(ChurnSampler, SortedBoundedAndConsistent) {
  const mesh::Mesh3D mesh(8, 8, 8);
  util::Rng rng(31337);
  util::ChurnParams p;
  p.rate = 0.05;
  p.horizon = 2000;
  p.repair_min = 50;
  p.repair_max = 400;
  const auto events =
      util::sample_churn(mesh, rng, p, [](Coord3) { return true; });
  ASSERT_FALSE(events.empty());

  std::map<size_t, uint64_t> down_since;  // node -> fault cycle
  uint64_t prev = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.cycle, prev);
    prev = e.cycle;
    if (!e.repair) {
      // Never strike a node that is already down.
      EXPECT_FALSE(down_since.count(e.node)) << "node " << e.node;
      down_since[e.node] = e.cycle;
    } else {
      ASSERT_TRUE(down_since.count(e.node));
      const uint64_t delay = e.cycle - down_since[e.node];
      EXPECT_GE(delay, p.repair_min);
      EXPECT_LE(delay, p.repair_max);
      down_since.erase(e.node);
    }
  }

  // Fault count should be in the right ballpark for a Poisson process.
  size_t fault_count = 0;
  for (const auto& e : events)
    if (!e.repair) ++fault_count;
  const double expected = p.rate * static_cast<double>(p.horizon);
  EXPECT_GT(static_cast<double>(fault_count), expected * 0.5);
  EXPECT_LT(static_cast<double>(fault_count), expected * 1.5);
}

TEST(ChurnSampler, RespectsProtectedNodes) {
  const mesh::Mesh2D mesh(6, 6);
  util::Rng rng(9);
  util::ChurnParams p;
  p.rate = 0.1;
  p.horizon = 500;
  const Coord2 protected_node{0, 0};
  const auto events = util::sample_churn(
      mesh, rng, p, [&](Coord2 c) { return !(c == protected_node); });
  for (const auto& e : events)
    EXPECT_NE(e.node, mesh.index(protected_node));
}

}  // namespace
}  // namespace mcc
