// Guidance-as-a-service serving core (src/serve): differential proof that
// every answer served from an RCU epoch snapshot is byte-identical to a
// fresh DynamicModel replayed to the same epoch (2-D and 3-D, randomized
// churn, including snapshots held across later writes), the buffer-pool
// reuse/growth contract, the epoch-lag bound (a reader never observes a
// snapshot older than the writer's epoch minus the lag it recorded), and
// the concurrent writer/readers soak the CI ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mesh/fault_injection.h"
#include "serve/load.h"
#include "serve/snapshot_store.h"
#include "util/rng.h"

namespace mcc {
namespace {

using mesh::Coord2;
using mesh::Coord3;
using serve::SnapshotStore2D;
using serve::SnapshotStore3D;

// ---------------------------------------------------------------------------
// Differential: snapshot answers == fresh-model answers at the same epoch

void expect_identical2d(const runtime::DynamicModel2D& snap,
                        const runtime::DynamicModel2D& fresh,
                        const mesh::Mesh2D& mesh, uint64_t seed,
                        const std::string& ctx) {
  ASSERT_EQ(snap.epoch(), fresh.epoch()) << ctx;
  util::Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    const Coord2 s = mesh.coord(rng.pick(mesh.node_count()));
    const Coord2 d = mesh.coord(rng.pick(mesh.node_count()));
    const auto fa = snap.feasible(s, d);
    const auto fb = fresh.feasible(s, d);
    ASSERT_EQ(fa.feasible, fb.feasible) << ctx;
    ASSERT_EQ(static_cast<int>(fa.basis), static_cast<int>(fb.basis)) << ctx;
    if (!fa.feasible) continue;
    const uint64_t rs = rng.fork();
    const auto ra = snap.route(s, d, core::RouterKind::Records,
                               core::RoutePolicy::Random, rs);
    const auto rb = fresh.route(s, d, core::RouterKind::Records,
                                core::RoutePolicy::Random, rs);
    ASSERT_EQ(ra.delivered, rb.delivered) << ctx;
    ASSERT_EQ(ra.failure, rb.failure) << ctx;
    ASSERT_EQ(ra.path.size(), rb.path.size()) << ctx;
    for (size_t h = 0; h < ra.path.size(); ++h)
      ASSERT_TRUE(ra.path[h] == rb.path[h]) << ctx << " hop " << h;
  }
}

void expect_identical3d(const runtime::DynamicModel3D& snap,
                        const runtime::DynamicModel3D& fresh,
                        const mesh::Mesh3D& mesh, uint64_t seed,
                        const std::string& ctx) {
  ASSERT_EQ(snap.epoch(), fresh.epoch()) << ctx;
  util::Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    const Coord3 s = mesh.coord(rng.pick(mesh.node_count()));
    const Coord3 d = mesh.coord(rng.pick(mesh.node_count()));
    const auto fa = snap.feasible(s, d);
    const auto fb = fresh.feasible(s, d);
    ASSERT_EQ(fa.feasible, fb.feasible) << ctx;
    ASSERT_EQ(static_cast<int>(fa.basis), static_cast<int>(fb.basis)) << ctx;
    if (!fa.feasible) continue;
    const uint64_t rs = rng.fork();
    const auto ra = snap.route(s, d, core::RouterKind::Flood,
                               core::RoutePolicy::Random, rs);
    const auto rb = fresh.route(s, d, core::RouterKind::Flood,
                                core::RoutePolicy::Random, rs);
    ASSERT_EQ(ra.delivered, rb.delivered) << ctx;
    ASSERT_EQ(ra.failure, rb.failure) << ctx;
    ASSERT_EQ(ra.path.size(), rb.path.size()) << ctx;
    for (size_t h = 0; h < ra.path.size(); ++h)
      ASSERT_TRUE(ra.path[h] == rb.path[h]) << ctx << " hop " << h;
  }
}

TEST(SnapshotDifferential2D, SnapshotMatchesFreshModelAcrossChurn) {
  const uint64_t seed = 0x5E13A;
  util::Rng rng(seed);
  const mesh::Mesh2D mesh(10, 10);
  const auto initial = mesh::inject_uniform(mesh, 0.08, rng);

  util::ChurnParams p;
  p.rate = 0.04;
  p.horizon = 300;
  p.repair_min = 20;
  p.repair_max = 120;
  const auto timeline =
      runtime::FaultTimeline2D::sample(mesh, initial, rng, p);
  ASSERT_FALSE(timeline.events().empty());

  SnapshotStore2D store(mesh, initial, 2);
  using Event = runtime::FaultTimeline2D::Event;
  std::vector<Event> applied;

  // A snapshot pinned mid-run: it must stay byte-stable while the writer
  // keeps publishing (verified against its own epoch's fresh replay at
  // the end).
  SnapshotStore2D::Snapshot pinned;
  std::vector<Event> pinned_events;

  size_t step = 0;
  for (const auto& e : timeline.events()) {
    store.apply(e.node, e.repair);
    applied.push_back(e);
    ++step;

    const auto snap = store.snapshot();
    runtime::DynamicModel2D fresh(mesh, initial);
    for (const auto& pe : applied)
      pe.repair ? fresh.repair(pe.node) : fresh.fail(pe.node);
    expect_identical2d(*snap, fresh, mesh, seed + step,
                       "2d after event " + std::to_string(step));

    if (step == timeline.events().size() / 2) {
      pinned = snap;
      pinned_events = applied;
    }
  }

  ASSERT_NE(pinned, nullptr);
  runtime::DynamicModel2D fresh(mesh, initial);
  for (const auto& pe : pinned_events)
    pe.repair ? fresh.repair(pe.node) : fresh.fail(pe.node);
  expect_identical2d(*pinned, fresh, mesh, seed + 9999,
                     "2d pinned snapshot after full churn");
}

TEST(SnapshotDifferential3D, SnapshotMatchesFreshModelAcrossChurn) {
  const uint64_t seed = 0x5E13B;
  util::Rng rng(seed);
  const mesh::Mesh3D mesh(6, 6, 6);
  const auto initial = mesh::inject_uniform(mesh, 0.04, rng);

  util::ChurnParams p;
  p.rate = 0.03;
  p.horizon = 200;
  p.repair_min = 15;
  p.repair_max = 90;
  const auto timeline =
      runtime::FaultTimeline3D::sample(mesh, initial, rng, p);
  ASSERT_FALSE(timeline.events().empty());

  SnapshotStore3D store(mesh, initial, 2);
  using Event = runtime::FaultTimeline3D::Event;
  std::vector<Event> applied;
  size_t step = 0;
  for (const auto& e : timeline.events()) {
    store.apply(e.node, e.repair);
    applied.push_back(e);
    ++step;
    // Fresh 3-D replays are expensive (8 octants): check every 3rd event
    // and always the last one.
    if (step % 3 != 0 && step != timeline.events().size()) continue;
    const auto snap = store.snapshot();
    runtime::DynamicModel3D fresh(mesh, initial);
    for (const auto& pe : applied)
      pe.repair ? fresh.repair(pe.node) : fresh.fail(pe.node);
    expect_identical3d(*snap, fresh, mesh, seed + step,
                       "3d after event " + std::to_string(step));
  }
}

// ---------------------------------------------------------------------------
// Buffer pool: reuse when snapshots are released, growth when pinned

TEST(SnapshotStore, BufferPoolReusesFreedBuffersAndGrowsUnderPinning) {
  util::Rng rng(0x5E13C);
  const mesh::Mesh2D mesh(8, 8);
  const auto initial = mesh::inject_uniform(mesh, 0.06, rng);
  SnapshotStore2D store(mesh, initial, 2);
  ASSERT_EQ(store.buffer_count(), 2u);

  // No reader holds a snapshot: the writer ping-pongs the two buffers.
  for (int i = 0; i < 6; ++i) {
    const Coord2 c = mesh.coord(rng.pick(mesh.node_count()));
    store.apply(c, store.snapshot()->faults().is_faulty(c));
  }
  EXPECT_EQ(store.buffer_count(), 2u);
  EXPECT_EQ(store.buffers_grown(), 0u);

  // Pin snapshots across writes: the store must grow instead of mutating
  // a model a reader can still see.
  std::vector<SnapshotStore2D::Snapshot> pinned;
  for (int i = 0; i < 4; ++i) {
    pinned.push_back(store.snapshot());
    const Coord2 c = mesh.coord(rng.pick(mesh.node_count()));
    store.apply(c, store.snapshot()->faults().is_faulty(c));
  }
  EXPECT_GT(store.buffers_grown(), 0u);
  const std::vector<uint64_t> epochs = [&] {
    std::vector<uint64_t> out;
    for (const auto& s : pinned) out.push_back(s->epoch());
    return out;
  }();
  // Pinned epochs are strictly increasing and still readable.
  for (size_t i = 1; i < epochs.size(); ++i)
    EXPECT_LT(epochs[i - 1], epochs[i]);

  // Releasing the pins returns the buffers for reuse.
  pinned.clear();
  const size_t buffers_before = store.buffer_count();
  for (int i = 0; i < 8; ++i) {
    const Coord2 c = mesh.coord(rng.pick(mesh.node_count()));
    store.apply(c, store.snapshot()->faults().is_faulty(c));
  }
  EXPECT_EQ(store.buffer_count(), buffers_before);
}

// ---------------------------------------------------------------------------
// Epoch lag: never negative, bounded by the published counter

TEST(EpochLag, ReadersNeverObserveMoreLagThanThePublishedCounter) {
  util::Rng rng(0x5E13D);
  const mesh::Mesh2D mesh(10, 10);
  const auto initial = mesh::inject_uniform(mesh, 0.06, rng);

  util::ChurnParams p;
  p.rate = 0.05;
  p.horizon = 400;
  p.repair_min = 10;
  p.repair_max = 80;
  const auto timeline =
      runtime::FaultTimeline2D::sample(mesh, initial, rng, p);
  ASSERT_FALSE(timeline.events().empty());

  SnapshotStore2D store(mesh, initial, 3);
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  constexpr int kReaders = 3;
  std::vector<uint64_t> reader_max_lag(kReaders, 0);

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        const auto v = store.view();
        // The snapshot is never newer than the writer epoch (lag >= 0 by
        // unsigned construction only if this holds), and lag is exactly
        // the distance to the writer's published epoch.
        if (v.snap->epoch() > v.writer_epoch) violations.fetch_add(1);
        if (v.snap->epoch() + v.lag != v.writer_epoch) violations.fetch_add(1);
        reader_max_lag[static_cast<size_t>(t)] =
            std::max(reader_max_lag[static_cast<size_t>(t)], v.lag);
      }
    });
  }

  for (const auto& e : timeline.events()) store.apply(e.node, e.repair);
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(violations.load(), 0);
  for (int t = 0; t < kReaders; ++t)
    EXPECT_LE(reader_max_lag[static_cast<size_t>(t)], store.max_reader_lag());
}

// ---------------------------------------------------------------------------
// Soak: the full writer + N readers harness (run under TSan in CI)

TEST(ServeSoak, ConcurrentLoad2DIsConsistent) {
  util::Rng rng(0x5E13E);
  const mesh::Mesh2D mesh(12, 12);
  const auto initial = mesh::inject_uniform(mesh, 0.06, rng);
  util::ChurnParams p;
  p.rate = 0.03;
  p.horizon = 300;
  p.repair_min = 20;
  p.repair_max = 150;
  const auto timeline =
      runtime::FaultTimeline2D::sample(mesh, initial, rng, p);

  serve::LoadConfig cfg;
  cfg.readers = 4;
  cfg.queries_per_reader = 400;
  cfg.mix = serve::QueryMix::Mixed;
  cfg.seed = 0x5E13E;
  const serve::LoadResult r = run_load(mesh, initial, timeline, cfg);

  EXPECT_EQ(r.queries_total, 4u * 400u);
  EXPECT_EQ(r.events_total, timeline.events().size());
  EXPECT_EQ(r.final_epoch, 1 + r.events_applied);
  EXPECT_EQ(r.publishes, r.events_total + 1);
  ASSERT_TRUE(r.replica_checked);
  EXPECT_TRUE(r.replica_consistent);
  uint64_t routed = 0, delivered = 0;
  for (const auto& me : r.readers) {
    EXPECT_EQ(me.queries, 400u);
    routed += me.routed;
    delivered += me.delivered;
  }
  // Model guidance delivers every feasible routed pair.
  EXPECT_EQ(routed, delivered);
  EXPECT_EQ(r.latency.count(), r.queries_total);
}

TEST(ServeSoak, ConcurrentLoad3DIsConsistent) {
  util::Rng rng(0x5E13F);
  const mesh::Mesh3D mesh(6, 6, 6);
  const auto initial = mesh::inject_uniform(mesh, 0.03, rng);
  util::ChurnParams p;
  p.rate = 0.02;
  p.horizon = 200;
  p.repair_min = 20;
  p.repair_max = 100;
  const auto timeline =
      runtime::FaultTimeline3D::sample(mesh, initial, rng, p);

  serve::LoadConfig cfg;
  cfg.readers = 4;
  cfg.queries_per_reader = 250;
  cfg.mix = serve::QueryMix::Mixed;
  cfg.seed = 0x5E13F;
  const serve::LoadResult r = run_load(mesh, initial, timeline, cfg);

  EXPECT_EQ(r.queries_total, 4u * 250u);
  EXPECT_EQ(r.final_epoch, 1 + r.events_applied);
  EXPECT_FALSE(r.replica_checked);  // delta replica is 2-D only
  uint64_t routed = 0, delivered = 0;
  for (const auto& me : r.readers) {
    routed += me.routed;
    delivered += me.delivered;
  }
  EXPECT_EQ(routed, delivered);
  EXPECT_EQ(r.latency.count(), r.queries_total);
}

}  // namespace
}  // namespace mcc
