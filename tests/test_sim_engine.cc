// Direct coverage of sim::SyncEngine: round counting, message and
// payload-word accounting, wall drops, and the quiescence flag. The proto
// suites exercise the engine only through full protocols; these tests pin
// the engine's contract in isolation.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mesh/coord.h"
#include "mesh/mesh.h"
#include "sim/engine.h"

namespace mcc::sim {
namespace {

using mesh::Coord2;
using mesh::Coord3;
using mesh::Dir2;
using mesh::Dir3;
using mesh::Mesh2D;
using mesh::Mesh3D;

TEST(SyncEngine, EmptyRunIsQuiescentWithZeroCost) {
  const Mesh2D m(4, 4);
  Engine2D eng(m);
  const RunStats stats = eng.run([](Coord2, const Message&,
                                    std::optional<Dir2>) { FAIL(); });
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.payload_words, 0u);
  EXPECT_TRUE(stats.quiescent);
}

TEST(SyncEngine, InjectedMessageArrivesWithNoFromDirection) {
  const Mesh2D m(4, 4);
  Engine2D eng(m);
  eng.inject({2, 1}, Message{7, {10, 20, 30}});

  size_t deliveries = 0;
  const RunStats stats = eng.run(
      [&](Coord2 self, const Message& msg, std::optional<Dir2> from) {
        ++deliveries;
        EXPECT_EQ(self, (Coord2{2, 1}));
        EXPECT_EQ(msg.type, 7);
        EXPECT_EQ(msg.data, (std::vector<int32_t>{10, 20, 30}));
        EXPECT_FALSE(from.has_value());
      });
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.payload_words, 3u);
  EXPECT_TRUE(stats.quiescent);
}

TEST(SyncEngine, SendDeliversNextRoundWithFromTowardSender) {
  const Mesh2D m(4, 4);
  Engine2D eng(m);
  eng.inject({1, 1}, Message{0, {}});

  std::vector<Coord2> order;
  const RunStats stats = eng.run(
      [&](Coord2 self, const Message& msg, std::optional<Dir2> from) {
        order.push_back(self);
        if (msg.type == 0) {
          eng.send(self, Dir2::PosX, Message{1, {42}});
        } else {
          EXPECT_EQ(self, (Coord2{2, 1}));
          // `from` points back along the link toward the sender.
          ASSERT_TRUE(from.has_value());
          EXPECT_EQ(*from, Dir2::NegX);
        }
      });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (Coord2{1, 1}));
  EXPECT_EQ(order[1], (Coord2{2, 1}));
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.payload_words, 1u);
  EXPECT_TRUE(stats.quiescent);
}

TEST(SyncEngine, SameRoundDeliveriesBatchIntoOneRound) {
  const Mesh2D m(5, 5);
  Engine2D eng(m);
  // Three bootstrap messages are all delivered in round 1; each handler
  // fans out one message, all delivered together in round 2.
  eng.inject({0, 0}, Message{0, {}});
  eng.inject({2, 2}, Message{0, {1}});
  eng.inject({4, 4}, Message{0, {1, 2}});

  const RunStats stats = eng.run(
      [&](Coord2 self, const Message& msg, std::optional<Dir2>) {
        if (msg.type == 0) eng.send(self, Dir2::NegY, Message{1, {9}});
      });
  // (0,0) and the walls: the NegY send from (0,0) falls off the mesh, the
  // other two arrive; rounds = bootstrap + fan-out.
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.messages, 5u);
  // 0+1+2 bootstrap words, plus one {9} word from each surviving fan-out.
  EXPECT_EQ(stats.payload_words, 5u);
  EXPECT_TRUE(stats.quiescent);
}

TEST(SyncEngine, SendsOffTheMeshAreSilentlyDropped) {
  const Mesh2D m(3, 3);
  Engine2D eng(m);
  eng.inject({0, 0}, Message{0, {}});

  size_t deliveries = 0;
  const RunStats stats = eng.run(
      [&](Coord2 self, const Message& msg, std::optional<Dir2>) {
        ++deliveries;
        if (msg.type != 0) return;
        // Both of these cross the wall at the mesh corner.
        eng.send(self, Dir2::NegX, Message{1, {1, 2, 3}});
        eng.send(self, Dir2::NegY, Message{1, {4, 5, 6}});
      });
  // Only the bootstrap message is ever delivered; the two wall-crossing
  // sends are dropped without being counted as messages or payload.
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.payload_words, 0u);
  EXPECT_TRUE(stats.quiescent);
}

TEST(SyncEngine, RoundCapStopsNonQuiescentRun) {
  const Mesh2D m(4, 1);
  Engine2D eng(m);
  eng.inject({0, 0}, Message{0, {}});

  // Ping-pong forever between (0,0) and (1,0).
  const RunStats stats = eng.run(
      [&](Coord2 self, const Message&, std::optional<Dir2>) {
        eng.send(self, self.x == 0 ? Dir2::PosX : Dir2::NegX, Message{1, {}});
      },
      /*max_rounds=*/10);
  EXPECT_EQ(stats.rounds, 10u);
  EXPECT_EQ(stats.messages, 10u);
  EXPECT_FALSE(stats.quiescent);
}

TEST(SyncEngine, FloodVisitsEveryNodeOnce3D) {
  const Mesh3D m(3, 3, 3);
  Engine3D eng(m);
  eng.inject({0, 0, 0}, Message{0, {}});

  std::vector<int> seen(m.node_count(), 0);
  const RunStats stats = eng.run(
      [&](Coord3 self, const Message&, std::optional<Dir3> from) {
        if (seen[m.index(self)]++) return;  // already visited: absorb
        for (mesh::Dir3 d : mesh::kAllDir3) {
          if (from && d == *from) continue;
          eng.send(self, d, Message{1, {}});
        }
      });
  for (size_t i = 0; i < m.node_count(); ++i) EXPECT_GE(seen[i], 1) << i;
  EXPECT_TRUE(stats.quiescent);
  // A flood from a corner of a 3x3x3 mesh needs exactly
  // 1 (bootstrap) + eccentricity (6) rounds to cover the far corner, plus
  // one final round to absorb the last duplicates.
  EXPECT_GE(stats.rounds, 7u);
}

}  // namespace
}  // namespace mcc::sim
