// Utility layer: grids, stats, tables, parallel_for, rng.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "util/grid.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcc::util {
namespace {

TEST(Grid2, IndexingRoundTrips) {
  Grid2<int> g(4, 3, -1);
  EXPECT_EQ(g.nx(), 4);
  EXPECT_EQ(g.ny(), 3);
  EXPECT_EQ(g.size(), 12u);
  int v = 0;
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 4; ++x) g.at(x, y) = v++;
  v = 0;
  for (size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], v++);
}

TEST(Grid2, BoundsChecks) {
  Grid2<int> g(4, 3);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(3, 2));
  EXPECT_FALSE(g.in_bounds(4, 0));
  EXPECT_FALSE(g.in_bounds(0, 3));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(Grid2, EqualityAndFill) {
  Grid2<int> a(2, 2, 5), b(2, 2, 5);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 6;
  EXPECT_FALSE(a == b);
  b.fill(5);
  EXPECT_EQ(a, b);
}

TEST(Grid3, IndexingRoundTrips) {
  Grid3<int> g(3, 4, 5);
  EXPECT_EQ(g.size(), 60u);
  g.at(2, 3, 4) = 42;
  EXPECT_EQ(g[g.index(2, 3, 4)], 42);
  EXPECT_TRUE(g.in_bounds(2, 3, 4));
  EXPECT_FALSE(g.in_bounds(3, 3, 4));
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform() * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(4);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(Table, RendersMarkdown) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
  EXPECT_NE(out.find("|-----|----|"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(Table::mean_ci(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, InlineWhenSingleWorker) {
  int count = 0;  // no synchronization needed inline
  parallel_for(100, [&](size_t) { ++count; }, 1);
  EXPECT_EQ(count, 100);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          100, [&](size_t i) { if (i == 50) throw std::runtime_error("boom"); },
          4),
      std::runtime_error);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(0, [&](size_t) { FAIL(); }, 4);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  std::vector<int> va, vb, vc;
  for (int i = 0; i < 50; ++i) {
    va.push_back(a.uniform_int(0, 1000));
    vb.push_back(b.uniform_int(0, 1000));
    vc.push_back(c.uniform_int(0, 1000));
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, PickInBounds) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.pick(5), 5u);
}

}  // namespace
}  // namespace mcc::util
