// Utility layer: grids, stats, tables, parallel_for, rng, churn sampling.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>

#include "mesh/mesh.h"
#include "util/grid.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/scenario.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcc::util {
namespace {

TEST(Grid2, IndexingRoundTrips) {
  Grid2<int> g(4, 3, -1);
  EXPECT_EQ(g.nx(), 4);
  EXPECT_EQ(g.ny(), 3);
  EXPECT_EQ(g.size(), 12u);
  int v = 0;
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 4; ++x) g.at(x, y) = v++;
  v = 0;
  for (size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], v++);
}

TEST(Grid2, BoundsChecks) {
  Grid2<int> g(4, 3);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(3, 2));
  EXPECT_FALSE(g.in_bounds(4, 0));
  EXPECT_FALSE(g.in_bounds(0, 3));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(Grid2, EqualityAndFill) {
  Grid2<int> a(2, 2, 5), b(2, 2, 5);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 6;
  EXPECT_FALSE(a == b);
  b.fill(5);
  EXPECT_EQ(a, b);
}

TEST(Grid3, IndexingRoundTrips) {
  Grid3<int> g(3, 4, 5);
  EXPECT_EQ(g.size(), 60u);
  g.at(2, 3, 4) = 42;
  EXPECT_EQ(g[g.index(2, 3, 4)], 42);
  EXPECT_TRUE(g.in_bounds(2, 3, 4));
  EXPECT_FALSE(g.in_bounds(3, 3, 4));
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform() * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(4);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(Table, RendersMarkdown) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
  EXPECT_NE(out.find("|-----|----|"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(Table::mean_ci(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, InlineWhenSingleWorker) {
  int count = 0;  // no synchronization needed inline
  parallel_for(100, [&](size_t) { ++count; }, 1);
  EXPECT_EQ(count, 100);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          100, [&](size_t i) { if (i == 50) throw std::runtime_error("boom"); },
          4),
      std::runtime_error);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallel_for(0, [&](size_t) { FAIL(); }, 4);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  std::vector<int> va, vb, vc;
  for (int i = 0; i < 50; ++i) {
    va.push_back(a.uniform_int(0, 1000));
    vb.push_back(b.uniform_int(0, 1000));
    vc.push_back(c.uniform_int(0, 1000));
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, PickInBounds) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.pick(5), 5u);
}

// ---------------------------------------------------------------------------
// sample_churn distribution properties (E14 satellite: the universe fault
// processes in src/fault/process.h reuse this exact skeleton, so these
// direct checks cover both).

TEST(SampleChurn, ArrivalCountMatchesPoissonMoments) {
  // Strikes arrive as a Poisson process at `rate` per cycle, so over many
  // independent schedules the fault count has mean ~= variance ~= rate *
  // horizon. With repairs off every strike lands (up to the 64-try pick
  // dodging the handful of still-dead nodes), so the fault count is the
  // arrival count.
  const mesh::Mesh2D m(16, 16);
  ChurnParams p;
  p.rate = 0.01;
  p.horizon = 2000;
  p.repair_min = 50;
  p.repair_max = 120;
  const double expected = p.rate * static_cast<double>(p.horizon);  // 20
  RunningStats counts;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed * 7919);
    const auto events =
        sample_churn(m, rng, p, [](mesh::Coord2) { return true; });
    size_t faults = 0;
    for (const ChurnEvent& e : events) faults += !e.repair;
    counts.add(static_cast<double>(faults));
  }
  // Mean within 4 sigma-of-the-mean of 20; variance within a factor that
  // 200 samples of a Poisson(20) meet comfortably.
  EXPECT_NEAR(counts.mean(), expected,
              4 * std::sqrt(expected / counts.count()));
  const double var = counts.stddev() * counts.stddev();
  EXPECT_GT(var, expected * 0.5);
  EXPECT_LT(var, expected * 1.6);
}

TEST(SampleChurn, RepairDelaysRespectBounds) {
  const mesh::Mesh2D m(12, 12);
  ChurnParams p;
  p.rate = 0.02;
  p.horizon = 3000;
  p.repair_min = 100;
  p.repair_max = 400;
  Rng rng(0xC0FFEE);
  const auto events =
      sample_churn(m, rng, p, [](mesh::Coord2) { return true; });
  ASSERT_FALSE(events.empty());
  // Pair each repair with the latest preceding fault on the same node.
  std::vector<uint64_t> fault_at(m.node_count(), 0);
  std::vector<bool> down(m.node_count(), false);
  size_t repairs = 0;
  uint64_t prev_cycle = 0;
  for (const ChurnEvent& e : events) {
    EXPECT_GE(e.cycle, prev_cycle);  // sorted by cycle
    EXPECT_LE(e.cycle, p.horizon + p.repair_max);
    prev_cycle = e.cycle;
    if (e.repair) {
      ASSERT_TRUE(down[e.node]) << "repair without a preceding fault";
      const uint64_t delay = e.cycle - fault_at[e.node];
      EXPECT_GE(delay, p.repair_min);
      EXPECT_LE(delay, p.repair_max);
      down[e.node] = false;
      ++repairs;
    } else {
      EXPECT_FALSE(down[e.node]) << "double strike on a down node";
      down[e.node] = true;
      fault_at[e.node] = e.cycle;
    }
  }
  EXPECT_GT(repairs, 0u);  // every strike schedules a repair
}

TEST(SampleChurn, DeterministicPerSeedAndPredRespected) {
  const mesh::Mesh2D m(10, 10);
  ChurnParams p;
  p.rate = 0.015;
  p.horizon = 2500;
  auto draw = [&](uint64_t seed) {
    Rng rng(seed);
    return sample_churn(m, rng, p,
                        [](mesh::Coord2 c) { return c.x != 0; });
  };
  const auto a = draw(42), b = draw(42), c = draw(43);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].repair, b[i].repair);
    EXPECT_NE(m.coord(a[i].node).x, 0);  // can_fail filter held
  }
  // A different seed draws a different schedule.
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].cycle != c[i].cycle || a[i].node != c[i].node;
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Wilson score interval (the reliability driver's CI).

TEST(WilsonCi, KnownValuesAndClamping) {
  const WilsonCi none = wilson_ci(0, 0);
  EXPECT_EQ(none.center, 0.0);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_EQ(none.hi, 0.0);

  // p = 0 and p = 1 stay inside [0, 1] with a nonzero-width interval.
  const WilsonCi zero = wilson_ci(0, 50);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.2);
  const WilsonCi one = wilson_ci(50, 50);
  EXPECT_EQ(one.hi, 1.0);
  EXPECT_LT(one.lo, 1.0);
  EXPECT_GT(one.lo, 0.8);

  // Balanced case: symmetric around ~0.5, center pulled toward 1/2.
  const WilsonCi half = wilson_ci(50, 100);
  EXPECT_NEAR(half.center, 0.5, 1e-12);
  EXPECT_NEAR(half.lo, 0.5 - (half.hi - 0.5), 1e-12);
  EXPECT_NEAR(half.lo, 0.404, 0.005);  // textbook Wilson bound
  EXPECT_NEAR(half.hi, 0.596, 0.005);

  // More data tightens the interval.
  const WilsonCi big = wilson_ci(500, 1000);
  EXPECT_GT(big.lo, half.lo);
  EXPECT_LT(big.hi, half.hi);
}

}  // namespace
}  // namespace mcc::util
