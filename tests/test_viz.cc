// ASCII renderer: the examples' visualization layer must mark every node
// class correctly.
#include <gtest/gtest.h>

#include "core/boundary2d.h"
#include "util/ascii_viz.h"

namespace mcc::util {
namespace {

TEST(AsciiViz, MarksAllNodeClasses) {
  const mesh::Mesh2D m(8, 6);
  mesh::FaultSet2D f(m);
  f.set_faulty({3, 3});
  f.set_faulty({4, 2});  // descending diagonal: creates 'u' and 'c' fills
  const core::LabelField2D labels(m, f);
  const core::MccSet2D mccs(m, labels);
  const core::Boundary2D boundary(m, labels, mccs);

  VizOptions opts;
  opts.boundary = &boundary;
  opts.source = {0, 0};
  opts.destination = {7, 5};
  opts.path = {{0, 0}, {1, 0}, {1, 1}};
  const std::string art = render_mesh(m, labels, opts);

  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('u'), std::string::npos);
  EXPECT_NE(art.find('c'), std::string::npos);
  EXPECT_NE(art.find('r'), std::string::npos);
  EXPECT_NE(art.find('S'), std::string::npos);
  EXPECT_NE(art.find('D'), std::string::npos);
  EXPECT_NE(art.find('o'), std::string::npos);
  // 6 rows + 1 axis line, each terminated by newline.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 7);
}

TEST(AsciiViz, RowOrderIsTopDown) {
  const mesh::Mesh2D m(3, 2);
  mesh::FaultSet2D f(m);
  f.set_faulty({0, 1});  // top-left in the rendering
  const core::LabelField2D labels(m, f);
  const std::string art = render_mesh(m, labels);
  // First rendered row is y=1: "1 #.."
  EXPECT_EQ(art.substr(0, 5), "1 #..");
}

}  // namespace
}  // namespace mcc::util
