// Wormhole simulator correctness: deadlock-freedom under stress (hotspot
// traffic squeezed around MCC fault regions must keep making forward
// progress and drain completely), flit-ordering/reassembly invariants (the
// network self-checks every ejected flit and records violations), credit
// conservation, and bit-exact determinism for a fixed seed.
#include <gtest/gtest.h>

#include <string>

#include "mesh/fault_injection.h"
#include "sim/wormhole/driver.h"
#include "sim/wormhole/network.h"
#include "sim/wormhole/routing.h"
#include "sim/wormhole/traffic.h"
#include "util/rng.h"
#include "util/scenario.h"

namespace mcc::sim::wh {
namespace {

using mesh::Coord2;
using mesh::Coord3;

void expect_clean(const NetStats& s) {
  for (const std::string& v : s.violations) ADD_FAILURE() << v;
}

TEST(Wormhole3D, SinglePacketZeroLoadLatency) {
  const mesh::Mesh3D m(4, 4, 4);
  const mesh::FaultSet3D f(m);
  DorRouting3D dor;
  Config cfg;
  Network3D net(m, f, dor, cfg, core::RoutePolicy::XFirst, 1);

  net.inject({0, 0, 0}, {3, 3, 3});
  for (int c = 0; c < 200 && !net.idle(); ++c) net.step();

  ASSERT_TRUE(net.idle());
  expect_clean(net.stats());
  EXPECT_EQ(net.stats().delivered_packets, 1u);
  EXPECT_EQ(net.stats().delivered_flits,
            static_cast<uint64_t>(cfg.packet_size));
  // 9 hops, one cycle each, plus pipeline/serialization overhead for the
  // remaining flits of the packet.
  EXPECT_GE(net.stats().latency.max(), 9u);
  EXPECT_LE(net.stats().latency.max(), 9u + 3u * cfg.packet_size);
  std::string err;
  EXPECT_TRUE(net.check_credits(&err)) << err;
}

TEST(Wormhole3D, SingleFlitPackets) {
  const mesh::Mesh3D m(4, 4, 4);
  const mesh::FaultSet3D f(m);
  MccRouting3D routing(m, f, GuidanceMode::Model);
  Config cfg;
  cfg.packet_size = 1;
  Network3D net(m, f, routing, cfg, core::RoutePolicy::Balanced, 2);

  util::Rng rng(7);
  int injected = 0;
  for (int t = 0; t < 40; ++t) {
    const auto [s, d] = util::random_strict_pair3d(m, rng);
    if (!routing.feasible(s, d)) continue;
    net.inject(s, d);
    ++injected;
  }
  ASSERT_GT(injected, 10);
  for (int c = 0; c < 2000 && !net.idle(); ++c) net.step();
  ASSERT_TRUE(net.idle());
  expect_clean(net.stats());
  EXPECT_EQ(net.stats().delivered_packets,
            static_cast<uint64_t>(injected));
}

TEST(Wormhole3D, AllPoliciesDeliverUnderFaults) {
  const mesh::Mesh3D m(6, 6, 6);
  util::Rng frng(0x5EED);
  const auto f = mesh::inject_clustered(m, 18, 3, frng);
  MccRouting3D routing(m, f, GuidanceMode::Model);

  for (const core::RoutePolicy p : core::kAllPolicies) {
    Config cfg;
    Network3D net(m, f, routing, cfg, p, 11);
    util::Rng rng(23);
    int injected = 0;
    for (int t = 0; t < 120; ++t) {
      const Coord3 s{rng.uniform_int(0, 5), rng.uniform_int(0, 5),
                     rng.uniform_int(0, 5)};
      const Coord3 d{rng.uniform_int(0, 5), rng.uniform_int(0, 5),
                     rng.uniform_int(0, 5)};
      if (!routing.feasible(s, d)) continue;
      net.inject(s, d);
      ++injected;
    }
    ASSERT_GT(injected, 30) << to_string(p);
    for (int c = 0; c < 20000 && !net.idle(); ++c) net.step();
    ASSERT_TRUE(net.idle()) << "policy " << to_string(p) << " left "
                            << net.in_flight() << " packets stuck";
    expect_clean(net.stats());
    EXPECT_EQ(net.stats().wedged_head_cycles, 0u) << to_string(p);
    std::string err;
    EXPECT_TRUE(net.check_credits(&err)) << err;
  }
}

// The acceptance-criteria stress: hotspot traffic + MCC fault regions with
// the tightest VC budget (one VC per deadlock class). The network must keep
// delivering while injection runs and drain completely afterwards — a
// deadlock would freeze in_flight above zero until the budget runs out.
TEST(Wormhole3D, DeadlockFreedomHotspotStress) {
  const mesh::Mesh3D m(6, 6, 6);
  util::Rng frng(0x57E55);
  auto f = mesh::inject_clustered(m, 20, 2, frng);
  mesh::add_plate_z(f, m, 1, 4, 1, 4, 3);
  f.set_faulty({3, 3, 3}, false);  // plate with a hole: a known choke point
  MccRouting3D routing(m, f, GuidanceMode::Model);

  Config cfg;
  cfg.vcs_per_class = 1;
  cfg.buffer_depth = 2;
  Network3D net(m, f, routing, cfg, core::RoutePolicy::Random, 3);
  TrafficGen3D traffic(m, f, routing, Pattern::Hotspot, 0xB0B, 0.6, 2);

  uint64_t last_progress_check = 0;
  for (int c = 0; c < 3000; ++c) {
    traffic.tick(net, 0.05);
    net.step();
    if (c % 500 == 499) {
      // Forward progress within every 500-cycle window while loaded.
      if (net.in_flight() > 0) {
        EXPECT_GT(net.stats().delivered_flits, last_progress_check)
            << "no forward progress in cycles " << c - 499 << ".." << c;
      }
      last_progress_check = net.stats().delivered_flits;
    }
  }
  int drain = 0;
  for (; drain < 60000 && !net.idle(); ++drain) net.step();
  ASSERT_TRUE(net.idle()) << net.in_flight() << " packets wedged after "
                          << drain << " drain cycles";
  expect_clean(net.stats());
  EXPECT_EQ(net.stats().wedged_head_cycles, 0u);
  EXPECT_GT(net.stats().delivered_packets, 100u);
  std::string err;
  EXPECT_TRUE(net.check_credits(&err)) << err;
}

TEST(Wormhole3D, CreditConservationUnderLoad) {
  const mesh::Mesh3D m(5, 5, 5);
  util::Rng frng(99);
  const auto f = mesh::inject_uniform(m, 0.06, frng);
  MccRouting3D routing(m, f, GuidanceMode::Model);
  Config cfg;
  cfg.buffer_depth = 3;
  Network3D net(m, f, routing, cfg, core::RoutePolicy::Alternate, 5);
  TrafficGen3D traffic(m, f, routing, Pattern::Uniform, 0xCAFE);

  std::string err;
  for (int c = 0; c < 1200; ++c) {
    traffic.tick(net, 0.04);
    net.step();
    if (c % 50 == 0) {
      ASSERT_TRUE(net.check_credits(&err)) << "c=" << c << ": " << err;
    }
  }
  for (int c = 0; c < 30000 && !net.idle(); ++c) net.step();
  ASSERT_TRUE(net.idle());
  ASSERT_TRUE(net.check_credits(&err)) << err;
  expect_clean(net.stats());
}

TEST(Wormhole3D, DeterministicGivenSeed) {
  const mesh::Mesh3D m(5, 5, 5);
  util::Rng frng(4242);
  const auto f = mesh::inject_clustered(m, 10, 2, frng);

  auto run = [&](uint64_t seed) {
    MccRouting3D routing(m, f, GuidanceMode::Model);
    const LoadPoint load{0.03, 200, 800, 20000};
    return run_load_point3d(m, f, routing, Pattern::Uniform, Config{},
                            core::RoutePolicy::Random, load, seed);
  };
  const SimResult a = run(17);
  const SimResult b = run(17);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.offered_flits, b.offered_flits);
  EXPECT_EQ(a.accepted_flits, b.accepted_flits);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.filtered, b.filtered);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_TRUE(a.drained);
}

// Oracle mode (cached reachability fields) and Model mode (per-hop exact
// safe-reach sweep) implement the same routing decision two different ways;
// identical seeds must therefore produce bit-identical simulations. This is
// the routing.h equivalence contract, exercised end to end.
TEST(Wormhole3D, ModelMatchesOracleBitExactly) {
  const mesh::Mesh3D m(5, 5, 5);
  util::Rng frng(777);
  const auto f = mesh::inject_clustered(m, 12, 2, frng);

  auto run = [&](GuidanceMode mode) {
    MccRouting3D routing(m, f, mode);
    const LoadPoint load{0.03, 200, 800, 20000, 1000};
    return run_load_point3d(m, f, routing, Pattern::Hotspot, Config{},
                            core::RoutePolicy::Random, load, 29);
  };
  const SimResult a = run(GuidanceMode::Model);
  const SimResult b = run(GuidanceMode::Oracle);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.offered_flits, b.offered_flits);
  EXPECT_EQ(a.accepted_flits, b.accepted_flits);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.filtered, b.filtered);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
}

TEST(Wormhole3D, OracleModeNeverWedges) {
  const mesh::Mesh3D m(6, 6, 6);
  util::Rng frng(808);
  const auto f = mesh::inject_uniform(m, 0.12, frng);
  MccRouting3D routing(m, f, GuidanceMode::Oracle);
  Config cfg;
  Network3D net(m, f, routing, cfg, core::RoutePolicy::Random, 6);
  TrafficGen3D traffic(m, f, routing, Pattern::Uniform, 0xACE);

  for (int c = 0; c < 1000; ++c) {
    traffic.tick(net, 0.03);
    net.step();
  }
  for (int c = 0; c < 30000 && !net.idle(); ++c) net.step();
  ASSERT_TRUE(net.idle());
  EXPECT_EQ(net.stats().wedged_head_cycles, 0u);
  expect_clean(net.stats());
}

TEST(Wormhole2D, ModelGuidanceDrainsAroundBlock) {
  const mesh::Mesh2D m(10, 10);
  mesh::FaultSet2D f(m);
  for (int x = 4; x <= 6; ++x)
    for (int y = 4; y <= 6; ++y) f.set_faulty({x, y});
  MccRouting2D routing(m, f, GuidanceMode::Model);

  Config cfg;
  cfg.vcs_per_class = 2;
  Network2D net(m, f, routing, cfg, core::RoutePolicy::Random, 9);

  util::Rng rng(31);
  int injected = 0;
  for (int t = 0; t < 200; ++t) {
    const Coord2 s{rng.uniform_int(0, 9), rng.uniform_int(0, 9)};
    const Coord2 d{rng.uniform_int(0, 9), rng.uniform_int(0, 9)};
    if (!routing.feasible(s, d)) continue;
    net.inject(s, d);
    ++injected;
  }
  ASSERT_GT(injected, 60);
  for (int c = 0; c < 40000 && !net.idle(); ++c) net.step();
  ASSERT_TRUE(net.idle());
  expect_clean(net.stats());
  EXPECT_EQ(net.stats().delivered_packets, static_cast<uint64_t>(injected));
  EXPECT_EQ(net.stats().wedged_head_cycles, 0u);
  std::string err;
  EXPECT_TRUE(net.check_credits(&err)) << err;
}

// Saturation is "accepted below 90% of offered", decided in integers.
// The old float form `accepted < uint64_t(0.9 * offered)` truncated the
// threshold: offered = 9 gave uint64_t(8.1) = 8, so accepted = 8 (which is
// 88.9% of offered — saturated) compared 8 < 8 and was misclassified as
// keeping up. Pin the exact boundary at offered ∈ {0, 9, 10}.
TEST(Wormhole, SaturationBoundaryIsExact) {
  // offered = 0: an idle window is never "saturated".
  EXPECT_FALSE(saturated_window(0, 0));
  // offered = 9: threshold is 8.1 flits, so 8 is saturated, 9 is not.
  EXPECT_TRUE(saturated_window(0, 9));
  EXPECT_TRUE(saturated_window(8, 9));   // 8/9 ≈ 0.889 < 0.9 — the old bug
  EXPECT_FALSE(saturated_window(9, 9));
  // offered = 10: threshold is exactly 9 flits; 9/10 = 0.9 is NOT below.
  EXPECT_TRUE(saturated_window(8, 10));
  EXPECT_FALSE(saturated_window(9, 10));
  EXPECT_FALSE(saturated_window(10, 10));
  // Large windows must not overflow: 10 * accepted stays in range for any
  // realistic flit count, and the comparison stays exact.
  EXPECT_TRUE(saturated_window(899'999'999ull, 1'000'000'000ull));
  EXPECT_FALSE(saturated_window(900'000'000ull, 1'000'000'000ull));
}

}  // namespace
}  // namespace mcc::sim::wh
