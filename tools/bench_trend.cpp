// bench_trend — the CI trend gate over emitted experiment JSON.
//
//   bench_trend <baseline.json> <candidate.json>
//
// Compares a freshly emitted document (mcc.bench/1, mcc.run_report/1 or
// mcc.campaign/1) against the committed baseline under bench/baselines/:
// every structural field, table cell and metric must match EXACTLY —
// except timing-valued columns/metrics (wall-clock measurements: headers
// or metric names with an ms/us/ns token, "time" or "speedup"), which are
// reported informationally but never fail the gate. Simulated-time values
// (latency in cycles, delivered counts) are deterministic and stay exact.
// The optional mcc.metrics/1 "obs" block follows the same split: counters
// compare exactly, gauges/histograms are informational. The "build"
// provenance block is never compared (rebuilding must not fail the gate).
//
// Exit codes: 0 = no drift (timing diffs allowed), 1 = metric drift,
// 2 = usage / IO / parse / schema error.
//
// Baselines are generated at the CI smoke shape (deterministic: one
// Monte-Carlo repetition, bit-stable simulators); to regenerate after an
// intentional change, re-run the bench with MCC_SMOKE=1 (or the campaign
// with smoke=1) and copy the emitted JSON over the baseline.
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/run_report.h"

namespace {

using mcc::api::Json;

int g_drift = 0;
int g_timing = 0;

void drift(const std::string& where, const std::string& what) {
  std::cerr << "DRIFT " << where << ": " << what << "\n";
  ++g_drift;
}

void timing_note(const std::string& where, const std::string& what) {
  std::cout << "note (timing) " << where << ": " << what << "\n";
  ++g_timing;
}

/// True for labels that measure wall-clock: an isolated ms/us/ns/time/
/// speedup token ("incr ms/ev", "mean_speedup" — but not "label msgs" or
/// a hypothetical "timeline events", which stay exact).
bool is_timing_label(const std::string& label) {
  std::string token;
  const auto check = [&token] {
    return token == "ms" || token == "us" || token == "ns" ||
           token == "time" || token == "speedup";
  };
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      token += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      if (check()) return true;
      token.clear();
    }
  }
  return check();
}

Json load(const std::string& path, bool& ok) {
  ok = false;
  std::ifstream f(path);
  if (!f) {
    std::cerr << "bench_trend: cannot open '" << path << "'\n";
    return Json();
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string error;
  Json doc = Json::parse(ss.str(), error);
  if (!error.empty()) {
    std::cerr << "bench_trend: " << path << ": JSON parse error: " << error
              << "\n";
    return Json();
  }
  const auto problems = mcc::api::validate_report_json(doc);
  if (!problems.empty()) {
    std::cerr << "bench_trend: " << path << ": schema violations:\n";
    for (const auto& p : problems) std::cerr << "  - " << p << "\n";
    return Json();
  }
  ok = true;
  return doc;
}

/// Flattens a document into its run reports: a bench envelope's runs, a
/// campaign's per-point reports, or the single report itself.
std::vector<std::pair<std::string, const Json*>> collect_reports(
    const Json& doc) {
  std::vector<std::pair<std::string, const Json*>> out;
  const std::string schema = doc.find("schema")->as_string();
  if (schema == mcc::api::kBenchSchema) {
    int i = 0;
    for (const Json& run : doc.find("runs")->items())
      out.emplace_back("runs[" + std::to_string(i++) + "]", &run);
  } else if (schema == mcc::api::kCampaignSchema) {
    for (const Json& pt : doc.find("points")->items())
      out.emplace_back(
          "point " + std::to_string(pt.find("index")->as_uint64()),
          pt.find("report"));
  } else {
    out.emplace_back("report", &doc);
  }
  return out;
}

/// The mcc.metrics/1 "obs" block: counters are deterministic across
/// thread counts and compare exactly; gauges and histograms are
/// scheduling/wall-clock shaped and stay informational.
void compare_obs(const std::string& where, const Json& base,
                 const Json& cand) {
  const Json* bcs = base.find("counters");
  const Json* ccs = cand.find("counters");
  if (bcs != nullptr && bcs->is_object() && ccs != nullptr &&
      ccs->is_object()) {
    for (const auto& [k, v] : bcs->members()) {
      const Json* c = ccs->find(k);
      if (c == nullptr)
        drift(where, "obs counter '" + k + "' removed");
      else if (v.dump() != c->dump())
        drift(where,
              "obs counter '" + k + "': " + v.dump() + " -> " + c->dump());
    }
    for (const auto& [k, v] : ccs->members()) {
      (void)v;
      if (bcs->find(k) == nullptr)
        drift(where, "obs counter '" + k + "' added");
    }
  }
  for (const char* section : {"gauges", "histograms"}) {
    const Json* b = base.find(section);
    const Json* c = cand.find(section);
    if (b != nullptr && c != nullptr && b->dump() != c->dump())
      timing_note(where, std::string("obs ") + section + " changed");
  }
}

void compare_reports(const std::string& where, const Json& base,
                     const Json& cand) {
  for (const char* key : {"name", "driver"}) {
    const std::string b = base.find(key)->as_string();
    const std::string c = cand.find(key)->as_string();
    if (b != c) drift(where, std::string(key) + " '" + b + "' -> '" + c + "'");
  }
  // A config change makes the numbers incomparable — that is drift too:
  // either the baseline needs regenerating or the change is unintended.
  if (base.find("config")->dump() != cand.find("config")->dump())
    drift(where, "config echo changed (regenerate the baseline if intended)");
  if (base.find("failed")->as_bool() != cand.find("failed")->as_bool())
    drift(where, "failed flag changed");

  const auto& bt = base.find("tables")->items();
  const auto& ct = cand.find("tables")->items();
  if (bt.size() != ct.size()) {
    drift(where, "table count " + std::to_string(bt.size()) + " -> " +
                     std::to_string(ct.size()));
    return;
  }
  for (size_t t = 0; t < bt.size(); ++t) {
    const std::string title = bt[t].find("title")->as_string();
    const std::string tw = where + " table '" + title + "'";
    if (title != ct[t].find("title")->as_string()) {
      drift(tw, "title changed to '" + ct[t].find("title")->as_string() +
                    "'");
      continue;
    }
    const auto& bh = bt[t].find("headers")->items();
    if (bt[t].find("headers")->dump() != ct[t].find("headers")->dump()) {
      drift(tw, "headers changed");
      continue;
    }
    const auto& br = bt[t].find("rows")->items();
    const auto& cr = ct[t].find("rows")->items();
    if (br.size() != cr.size()) {
      drift(tw, "row count " + std::to_string(br.size()) + " -> " +
                    std::to_string(cr.size()));
      continue;
    }
    for (size_t r = 0; r < br.size(); ++r) {
      const auto& bc = br[r].items();
      const auto& cc = cr[r].items();
      for (size_t col = 0; col < bc.size() && col < cc.size(); ++col) {
        const std::string& bv = bc[col].as_string();
        const std::string& cv = cc[col].as_string();
        if (bv == cv) continue;
        const std::string header = bh[col].as_string();
        const std::string msg = "row " + std::to_string(r) + " '" + header +
                                "': '" + bv + "' -> '" + cv + "'";
        if (is_timing_label(header))
          timing_note(tw, msg);
        else
          drift(tw, msg);
      }
    }
  }

  const auto& bm = base.find("metrics")->members();
  const auto& cm = cand.find("metrics")->members();
  if (bm.size() != cm.size()) {
    drift(where, "metric count changed");
    return;
  }
  for (size_t i = 0; i < bm.size(); ++i) {
    if (bm[i].first != cm[i].first) {
      drift(where, "metric '" + bm[i].first + "' -> '" + cm[i].first + "'");
      continue;
    }
    if (bm[i].second.dump() == cm[i].second.dump()) continue;
    const std::string msg = "metric '" + bm[i].first + "': " +
                            bm[i].second.dump() + " -> " +
                            cm[i].second.dump();
    if (is_timing_label(bm[i].first))
      timing_note(where, msg);
    else
      drift(where, msg);
  }

  const Json* bo = base.find("obs");
  const Json* co = cand.find("obs");
  if ((bo == nullptr) != (co == nullptr))
    drift(where,
          "obs block presence changed (regenerate the baseline if intended)");
  else if (bo != nullptr && co != nullptr)
    compare_obs(where, *bo, *co);
  // "build" provenance is intentionally never compared: rebuilding the
  // binary must not fail the gate.
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: bench_trend <baseline.json> <candidate.json>\n";
    return 2;
  }
  bool ok = false;
  const Json base = load(argv[1], ok);
  if (!ok) return 2;
  const Json cand = load(argv[2], ok);
  if (!ok) return 2;

  const std::string bs = base.find("schema")->as_string();
  const std::string cs = cand.find("schema")->as_string();
  if (bs != cs) {
    std::cerr << "bench_trend: schema mismatch (" << bs << " vs " << cs
              << ")\n";
    return 2;
  }

  const auto breps = collect_reports(base);
  const auto creps = collect_reports(cand);
  if (breps.size() != creps.size())
    drift("document", "run/point count " + std::to_string(breps.size()) +
                          " -> " + std::to_string(creps.size()));
  const size_t n = std::min(breps.size(), creps.size());
  for (size_t i = 0; i < n; ++i)
    compare_reports(breps[i].first, *breps[i].second, *creps[i].second);

  if (g_drift != 0) {
    std::cerr << "bench_trend: " << argv[2] << ": " << g_drift
              << " metric drift(s) vs " << argv[1] << "\n";
    return 1;
  }
  std::cout << argv[2] << ": no metric drift vs baseline";
  if (g_timing != 0)
    std::cout << " (" << g_timing << " timing diffs, informational)";
  std::cout << "\n";
  return 0;
}
