// mcc_run — the one front door to every experiment in this repository.
//
//   mcc_run [config.cfg] [key=value ...]   run a scenario
//   mcc_run --list                         show registries + key reference
//   mcc_run --dump-config [cfg] [k=v ...]  print the resolved config, no run
//   mcc_run --validate report.json         schema-check an emitted JSON file
//
// Exit codes: 0 success, 1 run failed (deadlock/violation/undelivered),
// 2 configuration error, 3 validation error.
//
// Any combination the registries span works without new C++, e.g.
//   mcc_run dims=2 driver=wormhole_churn fault_model=dynamic
//           policy=fault_block traffic=hotspot fault_rate=0.05
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.h"

namespace {

using mcc::api::Configuration;
using mcc::api::Json;

int list_registries() {
  mcc::api::register_builtins();
  const auto show = [](const auto& registry) {
    std::cout << registry.axis() << ":\n";
    for (const auto& e : registry.entries())
      std::cout << "  " << e.name << "  — " << e.help << "\n";
    std::cout << "\n";
  };
  show(mcc::api::drivers());
  show(mcc::api::fault_models());
  show(mcc::api::fault_patterns());
  show(mcc::api::policies());
  show(mcc::api::traffic_patterns());

  std::cout << "config keys (key = default — help):\n";
  for (const auto& [name, spec] : Configuration::schema()) {
    std::cout << "  " << name << " = "
              << (spec.def.empty() ? "\"\"" : spec.def) << "  ["
              << to_string(spec.type) << "] — " << spec.help;
    if (spec.env_alias != nullptr)
      std::cout << " (deprecated env alias: " << spec.env_alias << ")";
    std::cout << "\n";
  }
  std::cout << "\nsmoke.<key> = <value> pins the value a key takes when "
               "smoke=1 (CI smoke shape).\n";
  return 0;
}

int validate_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "mcc_run: cannot open '" << path << "'\n";
    return 3;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string error;
  const Json doc = Json::parse(ss.str(), error);
  if (!error.empty()) {
    std::cerr << "mcc_run: " << path << ": JSON parse error: " << error
              << "\n";
    return 3;
  }
  const auto problems = mcc::api::validate_report_json(doc);
  if (!problems.empty()) {
    std::cerr << "mcc_run: " << path << ": schema violations:\n";
    for (const auto& p : problems) std::cerr << "  - " << p << "\n";
    return 3;
  }
  std::cout << path << ": valid ("
            << doc.find("schema")->as_string() << ")\n";
  return 0;
}

// An argument is an override only when the text before '=' is a real
// config key (or a smoke.* pin); anything else — including a config-file
// path that happens to contain '=' — is treated as a file.
bool is_override(const std::string& a) {
  const size_t eq = a.find('=');
  if (eq == std::string::npos) return false;
  std::string key = a.substr(0, eq);
  if (key.rfind("smoke.", 0) == 0) key = key.substr(6);
  return Configuration::schema().count(key) != 0;
}

Configuration parse_command_line(const std::vector<std::string>& args) {
  Configuration cfg;
  std::vector<std::string> overrides;
  for (const std::string& a : args) {
    if (is_override(a)) {
      overrides.push_back(a);
    } else {
      cfg.load_file(a);
      if (!cfg.is_set("name")) {
        // Default the run name to the config file's stem.
        std::string stem = a;
        const size_t slash = stem.find_last_of('/');
        if (slash != std::string::npos) stem = stem.substr(slash + 1);
        const size_t dot = stem.find_last_of('.');
        if (dot != std::string::npos) stem = stem.substr(0, dot);
        cfg.set("name", stem);
      }
    }
  }
  cfg.apply_overrides(overrides);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool dump_only = false;

  if (!args.empty() && args[0] == "--list") return list_registries();
  if (!args.empty() && args[0] == "--validate") {
    if (args.size() != 2) {
      std::cerr << "usage: mcc_run --validate report.json\n";
      return 3;
    }
    return validate_file(args[1]);
  }
  if (!args.empty() && args[0] == "--dump-config") {
    dump_only = true;
    args.erase(args.begin());
  }
  if (args.empty()) {
    std::cerr << "usage: mcc_run [--list | --validate file | --dump-config] "
                 "[config.cfg] [key=value ...]\n";
    return 2;
  }

  try {
    Configuration cfg = parse_command_line(args);
    if (dump_only) {
      mcc::api::Experiment exp(std::move(cfg));  // validates everything
      for (const auto& [k, v] : exp.scenario().cfg->echo())
        std::cout << k << " = " << v << "\n";
      return 0;
    }
    mcc::api::Experiment exp(std::move(cfg));
    const mcc::api::RunReport report = exp.run();
    report.render(std::cout);
    if (report.failed()) {
      std::cerr << "mcc_run: run failed: " << report.failure() << "\n";
      return 1;
    }
    return 0;
  } catch (const mcc::api::ConfigError& e) {
    std::cerr << "mcc_run: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // Anything else (an IO failure, an internal schema self-check) is a
    // failed run, not a config error — keep the 0/1/2/3 contract.
    std::cerr << "mcc_run: error: " << e.what() << "\n";
    return 1;
  }
}
