// mcc_run — the one front door to every experiment in this repository.
//
//   mcc_run [config.cfg] [key=value ...]   run a scenario or a campaign
//   mcc_run --jobs N cfg [k=v ...]         campaign across N local workers
//   mcc_run --shard i/N cfg [k=v ...]      run one campaign shard (partial)
//   mcc_run --merge out.json part.json...  merge shard partials
//   mcc_run --serve-campaign cfg [k=v ..]  coordinator: serve the campaign
//                                          work queue (listen=, lease_*=)
//   mcc_run --workers N cfg [k=v ...]      serve + fork N local workers
//   mcc_run --work <addr>                  run one worker against a
//                                          coordinator (docs/distributed.md)
//   mcc_run --resume journal.ndjson ...    redo only the points missing
//                                          from a results_ndjson= journal
//   mcc_run --list                         show registries + key reference
//   mcc_run --dump-config [cfg] [k=v ...]  print the resolved config, no run
//   mcc_run --validate file                schema-check a JSON report, or
//                                          validate a .cfg (campaigns show
//                                          their expanded point count)
//
// A configuration with sweep.* axes is a campaign: the grid expands to one
// Experiment per point (deterministic per-point seeds derived from the
// coordinates), runs serially / sharded / forked, and the merged
// mcc.campaign/1 JSON is byte-identical for every shard count.
//
// Exit codes: 0 success, 1 run failed (deadlock/violation/failed point),
// 2 configuration error, 3 validation/merge error.
//
// Any combination the registries span works without new C++, e.g.
//   mcc_run dims=2 driver=wormhole_churn fault_model=dynamic
//           policy=fault_block traffic=hotspot sweep.churn=1,5,20
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <algorithm>
#include <memory>

#include "api/campaign.h"
#include "api/experiment.h"
#include "dist/coordinator.h"
#include "dist/worker.h"

namespace {

using mcc::api::Campaign;
using mcc::api::Configuration;
using mcc::api::Json;

int list_registries() {
  mcc::api::register_builtins();
  const auto show = [](const auto& registry) {
    std::cout << registry.axis() << ":\n";
    for (const auto& e : registry.entries()) {
      std::cout << "  " << e.name << "  — " << e.help << "\n";
      if (!e.note.empty()) std::cout << "      (" << e.note << ")\n";
    }
    std::cout << "\n";
  };
  show(mcc::api::drivers());
  show(mcc::api::fault_models());
  show(mcc::api::fault_patterns());
  show(mcc::api::policies());
  show(mcc::api::traffic_patterns());

  std::cout << "config keys (key = default — help):\n";
  for (const auto& [name, spec] : Configuration::schema()) {
    std::cout << "  " << name << " = "
              << (spec.def.empty() ? "\"\"" : spec.def) << "  ["
              << to_string(spec.type) << "] — " << spec.help;
    if (spec.env_alias != nullptr)
      std::cout << " (deprecated env alias: " << spec.env_alias << ")";
    std::cout << "\n";
  }
  std::cout << "\nsmoke.<key> = <value> pins the value a key takes when "
               "smoke=1 (CI smoke shape).\n";
  std::cout << "\ncampaign grids (sweep expansion, mcc.campaign/1 output):\n"
               "  sweep.<key> = v1, v2, ...          cartesian axis over "
               "<key> (first-declared axis varies slowest)\n"
               "  sweep.zip.<g>.<key> = v1, v2, ...  axes of group <g> "
               "advance together (equal lengths)\n"
               "  smoke.sweep.<key> = ...            smoke-mode pin of a "
               "sweep axis\n"
               "Elements split on ';' when present, else on ',' (';' lets "
               "list-typed keys sweep whole lists).\n"
               "max_points= caps the expansion; --shard i/N and --jobs N "
               "shard the run; --merge combines partials.\n";
  return 0;
}

int validate_json_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "mcc_run: cannot open '" << path << "'\n";
    return 3;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string error;
  const Json doc = Json::parse(ss.str(), error);
  if (!error.empty()) {
    std::cerr << "mcc_run: " << path << ": JSON parse error: " << error
              << "\n";
    return 3;
  }
  const auto problems = mcc::api::validate_report_json(doc);
  if (!problems.empty()) {
    std::cerr << "mcc_run: " << path << ": schema violations:\n";
    for (const auto& p : problems) std::cerr << "  - " << p << "\n";
    return 3;
  }
  std::cout << path << ": valid ("
            << doc.find("schema")->as_string() << ")\n";
  return 0;
}

/// Validates a configuration file: single scenarios resolve against the
/// registries, campaigns additionally expand (reporting the point count
/// and tripping on cartesian blow-ups past max_points=).
int validate_config_file(const std::string& path) {
  try {
    Configuration cfg;
    cfg.load_file(path);
    if (cfg.has_sweeps()) {
      const Campaign campaign(std::move(cfg));
      std::cout << path << ": valid campaign — "
                << campaign.points().size() << " points over "
                << campaign.axes().size() << " axes (";
      bool first = true;
      for (const auto& axis : campaign.axes()) {
        if (!first) std::cout << " x ";
        std::cout << axis.label << "[" << axis.points.size() << "]";
        first = false;
      }
      std::cout << ")\n";
    } else {
      const mcc::api::Experiment exp(std::move(cfg));
      std::cout << path << ": valid scenario (driver "
                << exp.scenario().driver << ")\n";
    }
    return 0;
  } catch (const mcc::api::ConfigError& e) {
    std::cerr << "mcc_run: " << e.what() << "\n";
    return 2;
  }
}

int merge_partials(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::cerr << "usage: mcc_run --merge out.json partial.json...\n";
    return 3;
  }
  try {
    std::vector<Json> partials;
    for (size_t i = 1; i < args.size(); ++i) {
      std::ifstream f(args[i]);
      if (!f) {
        std::cerr << "mcc_run: cannot open '" << args[i] << "'\n";
        return 3;
      }
      std::ostringstream ss;
      ss << f.rdbuf();
      std::string error;
      Json doc = Json::parse(ss.str(), error);
      if (!error.empty()) {
        std::cerr << "mcc_run: " << args[i] << ": JSON parse error: "
                  << error << "\n";
        return 3;
      }
      partials.push_back(std::move(doc));
    }
    const Json merged = Campaign::merge(partials);
    // Merge only checks headers and index coverage; a hand-edited or
    // truncated partial can still carry malformed points. That is bad
    // input, not an internal bug — report it on the 3 exit path.
    const auto problems = mcc::api::validate_report_json(merged);
    if (!problems.empty()) {
      std::cerr << "mcc_run: merged campaign violates its schema (bad "
                   "partial input?):\n";
      for (const auto& p : problems) std::cerr << "  - " << p << "\n";
      return 3;
    }
    std::ofstream out(args[0]);
    if (!out) {
      std::cerr << "mcc_run: cannot write '" << args[0] << "'\n";
      return 3;
    }
    out << merged.dump_pretty();
    Campaign::render_summary(merged, std::cout);
    return 0;
  } catch (const mcc::api::ConfigError& e) {
    std::cerr << "mcc_run: " << e.what() << "\n";
    return 3;
  }
}

// An argument is an override only when the text before '=' is a real
// config key (or a smoke./sweep. prefixed form of one); anything else —
// including a config-file path that happens to contain '=' — is treated
// as a file.
bool is_override(const std::string& a) {
  const size_t eq = a.find('=');
  if (eq == std::string::npos) return false;
  return Configuration::is_valid_key_name(a.substr(0, eq));
}

Configuration parse_command_line(const std::vector<std::string>& args) {
  Configuration cfg;
  std::vector<std::string> overrides;
  for (const std::string& a : args) {
    if (is_override(a)) {
      overrides.push_back(a);
    } else {
      cfg.load_file(a);
      if (!cfg.is_set("name")) {
        // Default the run name to the config file's stem.
        std::string stem = a;
        const size_t slash = stem.find_last_of('/');
        if (slash != std::string::npos) stem = stem.substr(slash + 1);
        const size_t dot = stem.find_last_of('.');
        if (dot != std::string::npos) stem = stem.substr(0, dot);
        cfg.set("name", stem);
      }
    }
  }
  cfg.apply_overrides(overrides);
  return cfg;
}

/// Whole-string positive int parse — rejects trailing garbage ("2.5",
/// "4x") that std::stoi would silently truncate.
bool parse_positive_int(const std::string& text, int& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  if (v < 1 || v > std::numeric_limits<int>::max()) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_shard(const std::string& text, int& shard, int& count) {
  const size_t slash = text.find('/');
  if (slash == std::string::npos) return false;
  return parse_positive_int(text.substr(0, slash), shard) &&
         parse_positive_int(text.substr(slash + 1), count) && shard <= count;
}

/// The distributed-execution flags (docs/distributed.md). --workers
/// implies --serve-campaign; --chaos-kill / --dist-abort-after are the
/// CTest fault-injection hooks.
struct DistFlags {
  bool serve = false;
  int workers = 0;
  std::string resume;  // journal path; empty = off
  int chaos_kill = 0;
  long abort_after = -1;
};

/// Runs a campaign: serial, one shard, forked across --jobs workers, or
/// served as a coordinator work queue (--serve-campaign / --workers).
/// Writes the mcc.campaign/1 document to campaign_json= (falling back to
/// report_json=, so generic preset harnesses work unchanged). Every
/// execution mode folds through the same merge path, so the final
/// document is byte-identical to the serial run's.
int run_campaign(Configuration cfg, int shard, int shard_count, int jobs,
                 const DistFlags& dist) {
  if (shard_count > 1 && jobs > 1) {
    std::cerr << "mcc_run: --shard runs one partial serially; --jobs "
                 "parallelizes a whole-campaign run — drop one of the two "
                 "flags\n";
    return 2;
  }
  if (shard_count > 1 && (dist.serve || !dist.resume.empty())) {
    std::cerr << "mcc_run: --shard cannot combine with --serve-campaign "
                 "or --resume (shards are stateless partials)\n";
    return 2;
  }
  if (dist.serve && jobs > 1) {
    std::cerr << "mcc_run: --serve-campaign parallelizes through workers; "
                 "use --workers N instead of --jobs\n";
    return 2;
  }

  // Dist/journal keys resolve off the base config before the move.
  const std::string results_ndjson = cfg.get_string("results_ndjson");
  const std::string dist_report_path = cfg.get_string("dist_report_json");
  std::string listen = cfg.get_string("listen");
  const int lease_batch = cfg.get_int("lease_batch");
  const int lease_ms = cfg.get_int("lease_ms");
  const int heartbeat_ms = cfg.get_int("heartbeat_ms");

  Campaign campaign(std::move(cfg));
  const bool partial = shard_count > 1;
  const std::string path = campaign.json_path();
  if (partial && path.empty()) {
    std::cerr << "mcc_run: --shard needs campaign_json= (or report_json=) "
                 "to write the partial document\n";
    return 2;
  }
  // The resume journal is the journal this run keeps appending to.
  const bool resume = !dist.resume.empty();
  const std::string journal_path = resume ? dist.resume : results_ndjson;
  std::vector<Campaign::PointResult> done;
  if (resume) done = campaign.load_journal(journal_path);

  std::vector<Campaign::PointResult> results;
  Json doc;
  if (partial) {
    results = campaign.run_shard(shard, shard_count, &std::cout);
    doc = campaign.to_json(results, shard, shard_count);
  } else if (dist.serve) {
    if (listen.empty()) {
      if (dist.workers == 0) {
        std::cerr << "mcc_run: --serve-campaign needs listen= (or "
                     "--workers N, which defaults to a private unix "
                     "socket)\n";
        return 2;
      }
      listen = "unix:.mcc_dist." + std::to_string(getpid()) + ".sock";
    }
    mcc::dist::CoordinatorOptions co;
    co.listen = listen;
    co.lease_batch = lease_batch;
    co.lease_ms = lease_ms;
    co.heartbeat_ms = heartbeat_ms;
    co.journal_path = journal_path;
    co.resume = resume;
    co.local_workers = dist.workers;
    co.chaos_kill_worker = dist.chaos_kill;
    co.abort_after = dist.abort_after;
    co.progress = &std::cout;
    mcc::dist::Coordinator coord(campaign, std::move(done), co);
    // Flushed eagerly: remote workers read this address off the log
    // while the coordinator is still blocked serving.
    std::cout << "# dist listening on " << coord.address() << std::endl;
    results = coord.run();
    const mcc::dist::SchedulerCounters& c = coord.counters();
    std::cout << "# dist scheduler: dispatched=" << c.dispatched
              << " completed=" << c.completed << " reissued=" << c.reissued
              << " duplicates=" << c.duplicates << "\n";
    if (!dist_report_path.empty()) {
      const Json rep = coord.report().to_json();
      const auto problems = mcc::api::validate_report_json(rep);
      if (!problems.empty())
        throw std::logic_error("dist report failed its own schema: " +
                               problems.front());
      std::ofstream f(dist_report_path);
      if (!f)
        throw mcc::api::ConfigError("config: cannot write '" +
                                    dist_report_path + "'");
      f << rep.dump_pretty();
    }
    doc = Campaign::merge({campaign.to_json(results, 1, 1)});
  } else {
    std::unique_ptr<mcc::api::JournalWriter> journal;
    Campaign::ResultSink sink;
    if (!journal_path.empty()) {
      journal = std::make_unique<mcc::api::JournalWriter>(
          journal_path, campaign.journal_header(), !resume);
      sink = [&](const Campaign::PointResult& r) {
        journal->append(campaign.point_json(r));
      };
    }
    if (resume) {
      results = campaign.run_points(campaign.missing_points(done), jobs,
                                    &std::cout, sink);
      for (auto& r : done) results.push_back(std::move(r));
      std::sort(results.begin(), results.end(),
                [](const Campaign::PointResult& a,
                   const Campaign::PointResult& b) {
                  return a.index < b.index;
                });
    } else {
      results = campaign.run(jobs, &std::cout, sink);
    }
    doc = Campaign::merge({campaign.to_json(results, 1, 1)});
  }
  const auto problems = mcc::api::validate_report_json(doc);
  if (!problems.empty())
    throw std::logic_error("campaign JSON failed its own schema: " +
                           problems.front());
  if (!path.empty()) {
    std::ofstream f(path);
    if (!f) throw mcc::api::ConfigError("config: cannot write '" + path +
                                        "'");
    f << doc.dump_pretty();
  }
  Campaign::render_summary(doc, std::cout);

  bool failed = false;
  for (const auto& r : results) failed = failed || r.failed;
  if (failed) {
    std::cerr << "mcc_run: campaign has failed points (see the summary "
                 "table and the JSON failure flags)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool dump_only = false;
  int shard = 1, shard_count = 1, jobs = 1;

  if (!args.empty() && args[0] == "--list") return list_registries();
  if (!args.empty() && args[0] == "--validate") {
    if (args.size() != 2) {
      std::cerr << "usage: mcc_run --validate <report.json | config.cfg>\n";
      return 3;
    }
    const std::string& path = args[1];
    const bool is_cfg =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".cfg") == 0;
    return is_cfg ? validate_config_file(path) : validate_json_file(path);
  }
  if (!args.empty() && args[0] == "--merge")
    return merge_partials({args.begin() + 1, args.end()});
  if (!args.empty() && args[0] == "--work") {
    if (args.size() != 2) {
      std::cerr << "usage: mcc_run --work <unix:path | tcp:host:port>\n";
      return 2;
    }
    try {
      return mcc::dist::run_worker(args[1], {});
    } catch (const mcc::api::ConfigError& e) {
      std::cerr << "mcc_run: " << e.what() << "\n";
      return 2;
    } catch (const std::exception& e) {
      std::cerr << "mcc_run: error: " << e.what() << "\n";
      return 1;
    }
  }

  // Flags may appear anywhere before/between config tokens.
  DistFlags dist;
  std::vector<std::string> rest;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--dump-config") {
      dump_only = true;
    } else if (args[i] == "--shard" && i + 1 < args.size()) {
      if (!parse_shard(args[++i], shard, shard_count)) {
        std::cerr << "mcc_run: --shard expects i/N with 1 <= i <= N\n";
        return 2;
      }
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_positive_int(args[++i], jobs)) {
        std::cerr << "mcc_run: --jobs expects a positive worker count\n";
        return 2;
      }
    } else if (args[i] == "--serve-campaign") {
      dist.serve = true;
    } else if (args[i] == "--workers" && i + 1 < args.size()) {
      if (!parse_positive_int(args[++i], dist.workers)) {
        std::cerr << "mcc_run: --workers expects a positive worker count\n";
        return 2;
      }
      dist.serve = true;
    } else if (args[i] == "--resume" && i + 1 < args.size()) {
      dist.resume = args[++i];
    } else if (args[i] == "--chaos-kill" && i + 1 < args.size()) {
      if (!parse_positive_int(args[++i], dist.chaos_kill)) {
        std::cerr << "mcc_run: --chaos-kill expects a local worker "
                     "number\n";
        return 2;
      }
    } else if (args[i] == "--dist-abort-after" && i + 1 < args.size()) {
      int n = 0;
      if (!parse_positive_int(args[++i], n)) {
        std::cerr << "mcc_run: --dist-abort-after expects a positive "
                     "journal line count\n";
        return 2;
      }
      dist.abort_after = n;
    } else {
      rest.push_back(args[i]);
    }
  }
  if ((dist.chaos_kill > 0 || dist.abort_after >= 0) && !dist.serve) {
    std::cerr << "mcc_run: --chaos-kill / --dist-abort-after are "
                 "--serve-campaign test hooks\n";
    return 2;
  }
  if (dist.chaos_kill > dist.workers) {
    std::cerr << "mcc_run: --chaos-kill names a local worker, so it needs "
                 "--workers N with N >= the victim number\n";
    return 2;
  }
  if (rest.empty()) {
    std::cerr << "usage: mcc_run [--list | --validate file | --merge out "
                 "partials... | --work addr | --dump-config | --shard i/N "
                 "| --jobs N | --serve-campaign | --workers N | --resume "
                 "journal] [config.cfg] [key=value ...]\n";
    return 2;
  }

  try {
    Configuration cfg = parse_command_line(rest);
    const bool campaign = cfg.has_sweeps();
    if (dump_only) {
      if (campaign) {
        const auto echoed = cfg.echo();
        Campaign camp(std::move(cfg));  // validates the full expansion
        for (const auto& [k, v] : echoed) std::cout << k << " = " << v << "\n";
        std::cout << "# campaign: " << camp.points().size() << " points\n";
      } else {
        mcc::api::Experiment exp(std::move(cfg));  // validates everything
        for (const auto& [k, v] : exp.scenario().cfg->echo())
          std::cout << k << " = " << v << "\n";
      }
      return 0;
    }
    if (campaign)
      return run_campaign(std::move(cfg), shard, shard_count, jobs, dist);
    if (dist.serve || !dist.resume.empty()) {
      std::cerr << "mcc_run: --serve-campaign / --resume apply to "
                   "campaigns (sweep.* axes); this configuration is a "
                   "single scenario\n";
      return 2;
    }
    if (shard_count > 1) {
      std::cerr << "mcc_run: --shard applies to campaigns (sweep.* axes); "
                   "this configuration is a single scenario\n";
      return 2;
    }
    mcc::api::Experiment exp(std::move(cfg));
    const mcc::api::RunReport report = exp.run();
    report.render(std::cout);
    if (report.failed()) {
      std::cerr << "mcc_run: run failed: " << report.failure() << "\n";
      return 1;
    }
    return 0;
  } catch (const mcc::api::ConfigError& e) {
    std::cerr << "mcc_run: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // Anything else (an IO failure, an internal schema self-check) is a
    // failed run, not a config error — keep the 0/1/2/3 contract.
    std::cerr << "mcc_run: error: " << e.what() << "\n";
    return 1;
  }
}
