// Throwaway: find a wall whose follower loops (complete == false).
#include <iostream>

#include "core/boundary2d.h"
#include "mesh/fault_injection.h"

using namespace mcc;
using core::NodeState;
using mesh::Coord2;

int main() {
  const int size = 12;
  const double rate = 0.15;
  const uint64_t seed = 202 + 500;
  const mesh::Mesh2D m(size, size);
  util::Rng rng(seed);
  const auto f = mesh::inject_uniform(m, rate, rng);
  const core::LabelField2D l(m, f);
  const core::MccSet2D mccs(m, l);
  const core::Boundary2D b(m, l, mccs);

  for (size_t id = 0; id < mccs.regions().size(); ++id) {
    for (int pass = 0; pass < 2; ++pass) {
      const core::Wall2D& w = pass ? b.x_wall(id) : b.y_wall(id);
      if (w.complete) continue;
      std::cout << (pass ? "X" : "Y") << "-wall of region " << id
                << " incomplete; path head:";
      for (size_t i = 0; i < w.path.size() && i < 40; ++i)
        std::cout << " " << w.path[i];
      std::cout << "\n  chain:";
      for (int c : w.chain) std::cout << " " << c;
      const auto& r = mccs.region(id);
      std::cout << "\n  region box (" << r.x0 << ".." << r.x1 << ","
                << r.y0 << ".." << r.y1 << ")\n";
      for (int y = size - 1; y >= 0; --y) {
        for (int x = 0; x < size; ++x) {
          const Coord2 c{x, y};
          char ch = '.';
          if (l.state(c) == NodeState::Faulty) ch = '#';
          else if (l.state(c) == NodeState::Useless) ch = 'u';
          else if (l.state(c) == NodeState::CantReach) ch = 'c';
          if (mccs.region_at(c) == static_cast<int>(id)) ch = 'M';
          std::cout << ch;
        }
        std::cout << "  y=" << y << "\n";
      }
      return 0;
    }
  }
  std::cout << "all complete at this config\n";
  return 0;
}
