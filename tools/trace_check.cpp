// trace_check — well-formedness gate for Chrome trace-event JSON emitted
// by `trace_json=` (src/obs/trace.cc). CI runs it over the trace a
// profiled smoke preset writes, so the trace surface cannot rot into
// something Perfetto refuses to load.
//
//   trace_check trace.json [trace2.json ...]
//
// Checks per file:
//   * the document parses and has a `traceEvents` array;
//   * every event is an object carrying name/ph/ts/tid (ph == "X" — the
//     sink only emits complete events);
//   * within each tid the ts sequence is monotone non-decreasing (the
//     sink sorts on write; a violation means the writer regressed).
//
// Exit codes: 0 all files pass, 1 a check failed, 2 usage/IO error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "api/json.h"

namespace {

using mcc::api::Json;

bool check_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open\n";
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();

  std::string error;
  const Json doc = Json::parse(os.str(), error);
  if (!error.empty()) {
    std::cerr << path << ": parse error: " << error << "\n";
    return false;
  }
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::cerr << path << ": missing traceEvents array\n";
    return false;
  }

  std::map<uint64_t, int64_t> last_ts;
  size_t index = 0;
  for (const Json& e : events->items()) {
    const auto fail = [&](const char* what) {
      std::cerr << path << ": event " << index << ": " << what << "\n";
      return false;
    };
    if (!e.is_object()) return fail("not an object");
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    const Json* ts = e.find("ts");
    const Json* tid = e.find("tid");
    if (name == nullptr || !name->is_string()) return fail("missing name");
    if (ph == nullptr || ph->as_string() != "X")
      return fail("ph must be \"X\"");
    if (ts == nullptr || !ts->is_number()) return fail("missing ts");
    if (tid == nullptr || !tid->is_number()) return fail("missing tid");
    const uint64_t lane = tid->as_uint64();
    const auto stamp = static_cast<int64_t>(ts->as_number());
    const auto it = last_ts.find(lane);
    if (it != last_ts.end() && stamp < it->second)
      return fail("ts not monotone within tid");
    last_ts[lane] = stamp;
    ++index;
  }
  std::cout << path << ": ok (" << index << " events, " << last_ts.size()
            << " lanes)\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_check trace.json [trace2.json ...]\n";
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = check_file(argv[i]) && ok;
  return ok ? 0 : 1;
}
